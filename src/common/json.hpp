// Minimal JSON value type with parser and serializer.
//
// Used by the deployment import/export layer (src/deploy/serialize) and the
// command-line tool; deliberately small: objects preserve insertion order,
// numbers are doubles, no comments, UTF-8 passed through verbatim with the
// standard escape set.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace nd::json {

class Value;
using Array = std::vector<Value>;
/// Order-preserving object (vector of pairs; lookup is linear — fine for the
/// small documents this library exchanges).
using Object = std::vector<std::pair<std::string, Value>>;

class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : v_(b) {}                // NOLINT(google-explicit-constructor)
  Value(double d) : v_(d) {}              // NOLINT(google-explicit-constructor)
  Value(int i) : v_(static_cast<double>(i)) {}        // NOLINT
  Value(std::int64_t i) : v_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}        // NOLINT
  Value(std::string s) : v_(std::move(s)) {}          // NOLINT
  Value(Array a) : v_(std::move(a)) {}                // NOLINT
  Value(Object o) : v_(std::move(o)) {}               // NOLINT

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_number() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  /// Typed accessors; throw std::invalid_argument on type mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object field lookup; throws if not an object or key missing.
  [[nodiscard]] const Value& at(const std::string& key) const;
  /// Object field lookup; returns nullptr when absent.
  [[nodiscard]] const Value* find(const std::string& key) const;

  /// Serialize; indent < 0 → compact single line.
  [[nodiscard]] std::string dump(int indent = -1) const;

  friend bool operator==(const Value& a, const Value& b) { return a.v_ == b.v_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parse a JSON document; throws std::invalid_argument with position info on
/// malformed input. Trailing non-whitespace is an error.
Value parse(const std::string& text);

}  // namespace nd::json
