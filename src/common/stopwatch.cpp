#include "common/stopwatch.hpp"

namespace nd {

double Stopwatch::seconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace nd
