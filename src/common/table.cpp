#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <locale>
#include <sstream>

#include "common/check.hpp"

namespace nd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ND_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  ND_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv(const std::string& tag) const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "csv," << tag;
    for (const auto& cell : cells) os << ',' << cell;
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

// All numeric formatting goes through a std::locale::classic() stream, never
// snprintf: printf-family output honours the process locale (LC_NUMERIC), so
// a de_DE.UTF-8 environment would print "0,500" and break golden tests and
// machine-readable CSV alike. The classic locale pins '.' and no grouping on
// every platform.
namespace {
std::ostringstream classic_stream() {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  return os;
}
}  // namespace

std::string fmt_f(double v, int precision) {
  std::ostringstream os = classic_stream();
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_e(double v, int precision) {
  std::ostringstream os = classic_stream();
  os << std::scientific << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_g(double v, int sig_digits) {
  std::ostringstream os = classic_stream();
  os << std::defaultfloat << std::setprecision(sig_digits) << v;
  return os.str();
}

std::string fmt_i(long long v) {
  std::ostringstream os = classic_stream();
  os << v;
  return os.str();
}

}  // namespace nd
