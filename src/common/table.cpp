#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/check.hpp"

namespace nd {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  ND_REQUIRE(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> row) {
  ND_REQUIRE(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c] << std::string(width[c] - cells[c].size(), ' ');
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total >= 2 ? total - 2 : total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv(const std::string& tag) const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "csv," << tag;
    for (const auto& cell : cells) os << ',' << cell;
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string fmt_f(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_e(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*e", precision, v);
  return buf;
}

std::string fmt_i(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

}  // namespace nd
