// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (task-graph generation, link-weight
// variation, fault injection) flows through nd::Prng so that experiments are
// reproducible from a single printed seed. The generator is xoshiro256**,
// seeded via SplitMix64 — fast, high quality, and independent of libstdc++'s
// unspecified distribution implementations (we implement our own uniform /
// exponential draws for cross-platform bit-stability).
#pragma once

#include <cstdint>
#include <vector>

namespace nd {

/// xoshiro256** engine with SplitMix64 seeding. Satisfies
/// UniformRandomBitGenerator so it can also feed <random> if ever needed.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  /// Next raw 64-bit draw.
  std::uint64_t operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential draw with the given rate (mean 1/rate). Requires rate > 0.
  double exponential(double rate);

  /// Bernoulli draw with probability p of true.
  bool bernoulli(double p);

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel experiment arms).
  Prng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace nd
