#include "common/thread_pool.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <utility>

namespace nd {

namespace {
thread_local int t_worker_slot = -1;
}  // namespace

int ThreadPool::current_worker_index() { return t_worker_slot; }

int& ThreadPool::open_spans() {
  thread_local int open = 0;
  return open;
}

int ThreadPool::default_threads() {
  if (const char* env = std::getenv("NOCDEPLOY_THREADS"); env != nullptr) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1 && v <= std::numeric_limits<int>::max()) return static_cast<int>(v);
  }
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads > 0 ? num_threads : default_threads();
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop(int slot) {
  t_worker_slot = slot;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    const int spans_before = open_spans();
    task();
    if (open_spans() != spans_before) {
      // A span leaked across a task boundary: its RAII scope now outlives the
      // task, so wait_idle() would declare the pool drained while timing
      // state still dangles. Fail loudly rather than corrupt telemetry.
      std::fprintf(stderr,
                   "ThreadPool worker %d: task finished with %d telemetry "
                   "span(s) still open; aborting\n",
                   slot, open_spans() - spans_before);
      std::abort();
    }
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for(ThreadPool& pool, int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  struct Shared {
    std::mutex mu;
    std::condition_variable done_cv;
    int remaining;
    int first_error_index = std::numeric_limits<int>::max();
    std::exception_ptr error;
  } shared;
  shared.remaining = n;

  for (int i = 0; i < n; ++i) {
    pool.submit([i, &shared, &fn] {
      std::exception_ptr err;
      try {
        fn(i);
      } catch (...) {
        err = std::current_exception();
      }
      const std::lock_guard<std::mutex> lock(shared.mu);
      if (err && i < shared.first_error_index) {
        shared.first_error_index = i;
        shared.error = err;
      }
      if (--shared.remaining == 0) shared.done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(shared.mu);
  shared.done_cv.wait(lock, [&shared] { return shared.remaining == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace nd
