// Fixed-size worker pool with a FIFO task queue, plus a blocking
// parallel_for helper. This is the only place the library spawns threads;
// both concurrent consumers — the work-sharing branch-and-bound
// (src/milp/parallel_bnb.cpp) and the seed-sweep runner
// (bench/sweep_runner.cpp) — build on it. See docs/parallelism.md for the
// threading model and lock order.
//
// Sizing: an explicit thread count wins; 0 defers to default_threads(),
// which honours the NOCDEPLOY_THREADS environment variable before falling
// back to std::thread::hardware_concurrency().
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nd {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 → default_threads()). The pool is
  /// fixed-size for its whole lifetime.
  explicit ThreadPool(int num_threads = 0);

  /// Drains the queue: blocks until every submitted task has finished, then
  /// joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueue a task. Tasks must not throw out of their body unless the
  /// caller arranges to observe the exception (parallel_for does); an
  /// exception escaping a bare submit() task terminates the process.
  void submit(std::function<void()> task);

  /// Block until the queue is empty AND no worker is mid-task.
  void wait_idle();

  /// NOCDEPLOY_THREADS if set to a positive integer, else
  /// hardware_concurrency(), never below 1.
  [[nodiscard]] static int default_threads();

  /// Pool slot of the calling thread: 0..size()-1 inside a worker, -1 on any
  /// thread that is not a pool worker (including the main thread). Stable for
  /// the worker's whole lifetime, so per-worker state — telemetry registries,
  /// trace lanes — can key on it instead of std::this_thread::get_id().
  [[nodiscard]] static int current_worker_index();

  /// Thread-local count of telemetry spans currently open on the calling
  /// thread (maintained by obs::Span). Workers check it around every task:
  /// a task that returns with a span still open would leave a dangling RAII
  /// scope crossing task boundaries — the pool aborts with a clear error
  /// instead of letting wait_idle() report a "drained" pool whose timing
  /// data silently bleeds between tasks.
  [[nodiscard]] static int& open_spans();

 private:
  void worker_loop(int slot);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait here for tasks
  std::condition_variable idle_cv_;  ///< wait_idle() waits here
  std::deque<std::function<void()>> queue_;
  int active_ = 0;       ///< workers currently running a task
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Run fn(0), …, fn(n-1) on the pool and block until all complete. If any
/// invocation throws, the exception of the LOWEST index that threw is
/// rethrown here (the remaining iterations still run to completion, so the
/// pool is left clean). With an empty pool-equivalent (n <= 0) this is a
/// no-op.
void parallel_for(ThreadPool& pool, int n, const std::function<void(int)>& fn);

}  // namespace nd
