// ASCII table / CSV emission for benchmark harnesses.
//
// Benches print figure series in two forms: a human-readable aligned table and
// a machine-readable CSV block (prefixed "csv,") so plots can be regenerated
// by piping bench output through `grep '^csv,'`.
#pragma once

#include <string>
#include <vector>

namespace nd {

/// Column-aligned table with a header row. Cells are free-form strings;
/// numeric formatting belongs to the caller (see fmt_* helpers).
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a row. Must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Render as an aligned ASCII table (with a rule under the header).
  [[nodiscard]] std::string to_ascii() const;

  /// Render as CSV lines, each prefixed with "csv," for easy grepping.
  [[nodiscard]] std::string to_csv(const std::string& tag) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// The fmt_* helpers format through std::locale::classic() streams (never the
// process locale), so output is byte-identical across platforms and LANG
// settings and can be golden-tested.

/// Fixed-precision double formatting (like "%.*f").
std::string fmt_f(double v, int precision = 3);

/// Scientific formatting (like "%.*e").
std::string fmt_e(double v, int precision = 3);

/// Compact general formatting with `sig_digits` significant digits (like
/// "%.*g") — spans magnitudes from iteration counts to nanoseconds without
/// fixed-point digit blowup.
std::string fmt_g(double v, int sig_digits = 6);

/// Integer formatting.
std::string fmt_i(long long v);

}  // namespace nd
