// Wall-clock stopwatch for solver timing (Fig. 2(f)) and time limits.
#pragma once

#include <chrono>

namespace nd {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Reset the origin to now.
  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last restart.
  [[nodiscard]] double seconds() const;

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nd
