#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace nd {

void Stats::add(double x) { values_.push_back(x); }

double Stats::mean() const {
  ND_REQUIRE(!values_.empty(), "mean of empty sample");
  double s = 0.0;
  for (const double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Stats::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (const double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Stats::min() const {
  ND_REQUIRE(!values_.empty(), "min of empty sample");
  return *std::min_element(values_.begin(), values_.end());
}

double Stats::max() const {
  ND_REQUIRE(!values_.empty(), "max of empty sample");
  return *std::max_element(values_.begin(), values_.end());
}

double Stats::median() const {
  ND_REQUIRE(!values_.empty(), "median of empty sample");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

}  // namespace nd
