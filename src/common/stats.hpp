// Streaming summary statistics for benchmark reporting: mean, stddev,
// min/max, median. Accumulate with add(), read at the end.
#pragma once

#include <vector>

namespace nd {

class Stats {
 public:
  void add(double x);

  [[nodiscard]] int count() const { return static_cast<int>(values_.size()); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n−1 denominator); 0 for fewer than 2 points.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Median (mean of the middle two for even counts).
  [[nodiscard]] double median() const;

 private:
  std::vector<double> values_;
};

}  // namespace nd
