// Streaming summary statistics for benchmark reporting: mean, stddev,
// min/max, median. Accumulate with add(), read at the end.
// Plus NeumaierSum, the compensated accumulator used wherever a result is
// *checked* rather than produced (certificate verification, residuals).
#pragma once

#include <cmath>
#include <vector>

namespace nd {

/// Compensated (Neumaier/Kahan–Babuška) summation: absorbs the rounding error
/// of every += into a correction term, so long dot products lose almost no
/// precision. Used by the certificate checkers, whose whole point is to be
/// numerically stricter than the solver they audit.
class NeumaierSum {
 public:
  void add(double x) {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }
  /// Convenience for dot products: add(a * b).
  void add_product(double a, double b) { add(a * b); }

  [[nodiscard]] double value() const { return sum_ + comp_; }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

class Stats {
 public:
  void add(double x);

  [[nodiscard]] int count() const { return static_cast<int>(values_.size()); }
  [[nodiscard]] bool empty() const { return values_.empty(); }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation (n−1 denominator); 0 for fewer than 2 points.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Median (mean of the middle two for even counts).
  [[nodiscard]] double median() const;

 private:
  std::vector<double> values_;
};

}  // namespace nd
