#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace nd::json {

namespace {
[[noreturn]] void type_error(const char* want) {
  throw std::invalid_argument(std::string("json: value is not a ") + want);
}
}  // namespace

bool Value::as_bool() const {
  if (!is_bool()) type_error("bool");
  return std::get<bool>(v_);
}

double Value::as_number() const {
  if (!is_number()) type_error("number");
  return std::get<double>(v_);
}

const std::string& Value::as_string() const {
  if (!is_string()) type_error("string");
  return std::get<std::string>(v_);
}

const Array& Value::as_array() const {
  if (!is_array()) type_error("array");
  return std::get<Array>(v_);
}

const Object& Value::as_object() const {
  if (!is_object()) type_error("object");
  return std::get<Object>(v_);
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) type_error("object");
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw std::invalid_argument("json: missing key '" + key + "'");
  return *v;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (std::floor(d) == d && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  }
}

}  // namespace

std::string Value::dump(int indent) const {
  std::string out;
  // Recursive lambda keeps the serializer local.
  auto rec = [&](auto&& self, const Value& v, int depth) -> void {
    const auto pad = [&](int d) {
      if (indent >= 0) {
        out += '\n';
        out.append(static_cast<std::size_t>(d * indent), ' ');
      }
    };
    if (v.is_null()) {
      out += "null";
    } else if (v.is_bool()) {
      out += v.as_bool() ? "true" : "false";
    } else if (v.is_number()) {
      dump_number(v.as_number(), out);
    } else if (v.is_string()) {
      dump_string(v.as_string(), out);
    } else if (v.is_array()) {
      const Array& a = v.as_array();
      if (a.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i > 0) out += ',';
        pad(depth + 1);
        self(self, a[i], depth + 1);
      }
      pad(depth);
      out += ']';
    } else {
      const Object& o = v.as_object();
      if (o.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, val] : o) {
        if (!first) out += ',';
        first = false;
        pad(depth + 1);
        dump_string(k, out);
        out += indent >= 0 ? ": " : ":";
        self(self, val, depth + 1);
      }
      pad(depth);
      out += '}';
    }
  };
  rec(rec, *this, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value run() {
    Value v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    std::ostringstream os;
    os << "json parse error at offset " << pos_ << ": " << msg;
    throw std::invalid_argument(os.str());
  }

  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  char get() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (get() != c) fail(std::string("expected '") + c + "'");
  }

  void expect_word(const char* w) {
    for (const char* p = w; *p != '\0'; ++p) {
      if (pos_ >= s_.size() || s_[pos_] != *p) fail(std::string("expected '") + w + "'");
      ++pos_;
    }
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case 'n': expect_word("null"); return Value(nullptr);
      case 't': expect_word("true"); return Value(true);
      case 'f': expect_word("false"); return Value(false);
      case '"': return Value(string());
      case '[': return array();
      case '{': return object();
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = get();
      if (c == '"') break;
      if (c == '\\') {
        const char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = get();
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code += static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code += static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code += static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad \\u escape");
              }
            }
            // Encode BMP code point as UTF-8 (surrogate pairs unsupported —
            // the library never emits them).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return out;
  }

  Value number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      const double d = std::stod(tok, &used);
      if (used != tok.size()) fail("malformed number");
      return Value(d);
    } catch (const std::logic_error&) {
      fail("malformed number '" + tok + "'");
    }
  }

  Value array() {
    expect('[');
    Array out;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      out.push_back(value());
      skip_ws();
      const char c = get();
      if (c == ']') break;
      if (c != ',') fail("expected ',' or ']'");
    }
    return Value(std::move(out));
  }

  Value object() {
    expect('{');
    Object out;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(out));
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.emplace_back(std::move(key), value());
      skip_ws();
      const char c = get();
      if (c == '}') break;
      if (c != ',') fail("expected ',' or '}'");
    }
    return Value(std::move(out));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).run(); }

}  // namespace nd::json
