#include "common/prng.hpp"

#include <cmath>

#include "common/check.hpp"

namespace nd {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }
}  // namespace

Prng::Prng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Prng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Prng::uniform() {
  // 53 random mantissa bits → uniform in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Prng::uniform(double lo, double hi) {
  ND_REQUIRE(lo <= hi, "uniform range inverted");
  return lo + (hi - lo) * uniform();
}

std::int64_t Prng::uniform_int(std::int64_t lo, std::int64_t hi) {
  ND_REQUIRE(lo <= hi, "uniform_int range inverted");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Prng::exponential(double rate) {
  ND_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // Use 1 - uniform() in (0, 1] so log() never sees zero.
  return -std::log(1.0 - uniform()) / rate;
}

bool Prng::bernoulli(double p) { return uniform() < p; }

Prng Prng::split() { return Prng((*this)()); }

}  // namespace nd
