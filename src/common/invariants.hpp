// Debug-mode invariant instrumentation for the solver hot paths.
//
// ND_INVARIANT compiles to *nothing* unless the build defines
// NOCDEPLOY_INVARIANTS=1 (CMake option NOCDEPLOY_INVARIANTS, enabled by the
// asan-ubsan and tsan presets), so Release binaries and perf-sensitive
// benches are bit-for-bit unaffected. Supporting bookkeeping (counters,
// saved objective values) must be guarded with `#if ND_INVARIANTS_ENABLED`
// so it too vanishes from instrumented-off builds.
//
// Contrast with common/check.hpp: ND_REQUIRE/ND_ASSERT stay on in every
// build and guard user-facing contracts; ND_INVARIANT guards internal
// algorithmic properties that are too expensive to verify in production
// (per-pivot basis scans, per-node bound comparisons).
#pragma once

#include "common/check.hpp"

#ifndef NOCDEPLOY_INVARIANTS
#define NOCDEPLOY_INVARIANTS 0
#endif

#if NOCDEPLOY_INVARIANTS
#define ND_INVARIANTS_ENABLED 1
#define ND_INVARIANT(expr, msg) ND_ASSERT(expr, msg)
#else
#define ND_INVARIANTS_ENABLED 0
#define ND_INVARIANT(expr, msg) \
  do {                          \
  } while (false)
#endif
