#include "heuristic/phases.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.hpp"
#include "common/stopwatch.hpp"
#include "deploy/evaluate.hpp"
#include "obs/obs.hpp"

namespace nd::heuristic {

namespace {
constexpr double kTimeTol = 1e-9;

double mean_edge_bytes(const deploy::DeploymentProblem& p) {
  const auto& edges = p.graph().edges();
  if (edges.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& e : edges) sum += e.bytes;
  return sum / static_cast<double>(edges.size());
}

/// Placeholder per-task input communication time used by Algorithm 2:
/// Σ over active in-edges of bytes · (max_t + min_t)/2 (per byte).
std::vector<double> placeholder_comm_times(const deploy::DeploymentProblem& p,
                                           const deploy::DeploymentSolution& s) {
  const double mid_t = 0.5 * (p.mesh().max_time_per_byte() + p.mesh().min_time_per_byte());
  std::vector<double> out(static_cast<std::size_t>(p.num_total_tasks()), 0.0);
  for (int i = 0; i < p.num_total_tasks(); ++i) {
    if (!s.exists[static_cast<std::size_t>(i)]) continue;
    for (const int ei : p.dup().in_edges(i)) {
      const auto& e = p.dup().edges()[static_cast<std::size_t>(ei)];
      if (!s.exists[static_cast<std::size_t>(e.from)]) continue;
      const bool gated = std::any_of(e.gates.begin(), e.gates.end(), [&](int g) {
        return s.exists[static_cast<std::size_t>(g)] == 0;
      });
      if (gated) continue;
      out[static_cast<std::size_t>(i)] += e.bytes * mid_t;
    }
  }
  return out;
}

/// Actual per-task input communication times from the current path choices.
std::vector<double> actual_comm_times(const deploy::DeploymentProblem& p,
                                      const deploy::DeploymentSolution& s) {
  std::vector<double> out(static_cast<std::size_t>(p.num_total_tasks()), 0.0);
  for (int i = 0; i < p.num_total_tasks(); ++i) {
    out[static_cast<std::size_t>(i)] = deploy::comm_time_into(p, s, i);
  }
  return out;
}

void set_fail(std::string* why, const std::string& msg) {
  if (why != nullptr) *why = msg;
}

}  // namespace

bool phase1_frequency_and_duplication(const deploy::DeploymentProblem& p,
                                      deploy::DeploymentSolution& s, std::string* why) {
  const int m = p.num_tasks();
  const int levels = p.num_levels();
  double e_max = 0.0;  // max computation energy among already-assigned tasks

  // Greedy level pick minimizing max(e_max, e_i(l)); `accept` filters levels.
  auto pick_level = [&](int i, auto&& accept) -> int {
    int best = -1;
    double best_cand = std::numeric_limits<double>::infinity();
    double best_energy = std::numeric_limits<double>::infinity();
    for (int l = 0; l < levels; ++l) {
      if (p.vf().exec_time(p.dup().wcec(i), l) > p.dup().deadline(i) + kTimeTol) continue;  // (8)
      if (!accept(l)) continue;
      const double e = p.vf().energy(p.dup().wcec(i), l);
      const double cand = std::max(e_max, e);
      if (cand < best_cand - 1e-15 ||
          (cand <= best_cand + 1e-15 && e < best_energy - 1e-15)) {
        best = l;
        best_cand = cand;
        best_energy = e;
      }
    }
    return best;
  };

  for (int i = 0; i < m; ++i) {
    const int l = pick_level(i, [](int) { return true; });
    if (l < 0) {
      std::ostringstream os;
      os << "task " << i << " has no deadline-feasible V/F level";
      set_fail(why, os.str());
      return false;
    }
    s.level[static_cast<std::size_t>(i)] = l;
    e_max = std::max(e_max, p.vf().energy(p.dup().wcec(i), l));

    // Duplication trigger (4): copy exists iff single-copy reliability falls
    // short of the threshold.
    const double r = p.fault().task_reliability(p.dup().wcec(i), l);
    const int d = i + m;
    if (r >= p.r_th()) {
      s.exists[static_cast<std::size_t>(d)] = 0;
      continue;
    }
    s.exists[static_cast<std::size_t>(d)] = 1;
    ND_OBS_COUNT("heur.phase1.duplications", 1);
    const int ld = pick_level(d, [&](int cand) {
      const double rd = p.fault().task_reliability(p.dup().wcec(d), cand);
      return reliability::FaultModel::duplicated(r, rd) >= p.r_th();  // (5)
    });
    if (ld < 0) {
      std::ostringstream os;
      os << "task " << i << " cannot reach R_th even with duplication";
      set_fail(why, os.str());
      return false;
    }
    s.level[static_cast<std::size_t>(d)] = ld;
    e_max = std::max(e_max, p.vf().energy(p.dup().wcec(d), ld));
  }
  return true;
}

std::vector<int> allocation_order(const deploy::DeploymentProblem& p,
                                  const deploy::DeploymentSolution& s, bool layered_sort) {
  std::vector<int> order;
  for (int i = 0; i < p.num_total_tasks(); ++i) {
    if (s.exists[static_cast<std::size_t>(i)]) order.push_back(i);
  }
  if (layered_sort) {
    const std::vector<int> layer = p.dup().layers();
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const int la = layer[static_cast<std::size_t>(a)];
      const int lb = layer[static_cast<std::size_t>(b)];
      if (la != lb) return la < lb;
      const auto ca = p.dup().wcec(a);
      const auto cb = p.dup().wcec(b);
      if (ca != cb) return ca > cb;  // descending execution cycles
      return a < b;
    });
  }
  return order;
}

double reschedule(const deploy::DeploymentProblem& p, deploy::DeploymentSolution& s,
                  const std::vector<double>& comm_into_task) {
  ND_REQUIRE(static_cast<int>(comm_into_task.size()) == p.num_total_tasks(),
             "comm_into_task arity mismatch");
  // Layered order is topologically consistent (copies share their original's
  // layer and every edge goes to a strictly deeper layer).
  const std::vector<int> order = allocation_order(p, s, /*layered_sort=*/true);
  std::vector<double> avail(static_cast<std::size_t>(p.num_procs()), 0.0);
  double makespan = 0.0;
  for (const int i : order) {
    const auto iu = static_cast<std::size_t>(i);
    double pred_end = 0.0;
    for (const int ei : p.dup().in_edges(i)) {
      const auto& e = p.dup().edges()[static_cast<std::size_t>(ei)];
      if (!s.exists[static_cast<std::size_t>(e.from)]) continue;
      const bool gated = std::any_of(e.gates.begin(), e.gates.end(), [&](int g) {
        return s.exists[static_cast<std::size_t>(g)] == 0;
      });
      if (gated) continue;
      pred_end = std::max(pred_end, s.end[static_cast<std::size_t>(e.from)]);
    }
    const int k = s.proc[iu];
    ND_REQUIRE(k >= 0 && k < p.num_procs(), "reschedule requires allocated tasks");
    const double start = std::max(pred_end + comm_into_task[iu], avail[static_cast<std::size_t>(k)]);
    s.start[iu] = start;
    s.end[iu] = start + deploy::comp_time(p, s, i);
    avail[static_cast<std::size_t>(k)] = s.end[iu];
    makespan = std::max(makespan, s.end[iu]);
  }
  return makespan;
}

bool phase2_allocation_and_scheduling(const deploy::DeploymentProblem& p,
                                      deploy::DeploymentSolution& s, const Phase2Options& opt,
                                      std::string* why) {
  const int n = p.num_procs();
  const std::vector<int> order = allocation_order(p, s, opt.layered_sort);
  if (order.empty()) {
    set_fail(why, "no tasks to allocate");
    return false;
  }

  // Fixed per-processor communication-energy placeholder (Algorithm 2's
  // E_k^comm average): M2 · mean-bytes · (max+min)/2 per-byte share of k.
  std::vector<double> placeholder(static_cast<std::size_t>(n), 0.0);
  if (opt.comm_placeholder) {
    const double m2 = static_cast<double>(order.size());
    const double bytes = mean_edge_bytes(p);
    for (int k = 0; k < n; ++k) {
      placeholder[static_cast<std::size_t>(k)] = m2 * bytes * p.mesh().avg_energy_share(k);
    }
  }

  std::vector<double> load = placeholder;  // E_k^comm placeholder + E_k^comp
  for (const int i : order) {
    const double e = deploy::comp_energy(p, s, i);
    int best_k = -1;
    double best_cand = std::numeric_limits<double>::infinity();
    for (int k = 0; k < n; ++k) {
      double cand = 0.0;
      for (int k2 = 0; k2 < n; ++k2) {
        const double l =
            load[static_cast<std::size_t>(k2)] + ((k2 == k) ? e : 0.0);
        cand = std::max(cand, l);
      }
      if (cand < best_cand - 1e-15) {
        best_cand = cand;
        best_k = k;
      }
    }
    ND_ASSERT(best_k >= 0, "allocation always finds a processor");
    s.proc[static_cast<std::size_t>(i)] = best_k;
    load[static_cast<std::size_t>(best_k)] += e;
  }

  reschedule(p, s, placeholder_comm_times(p, s));
  return true;
}

bool phase3_path_selection(const deploy::DeploymentProblem& p, deploy::DeploymentSolution& s,
                           std::string* why) {
  const int n = p.num_procs();
  for (int beta = 0; beta < n; ++beta) {
    for (int gamma = 0; gamma < n; ++gamma) {
      if (beta == gamma) continue;
      const auto pair = static_cast<std::size_t>(beta * n + gamma);
      int best_rho = -1;
      double best_cost = std::numeric_limits<double>::infinity();
      int fallback_rho = 0;
      double fallback_makespan = std::numeric_limits<double>::infinity();
      for (int rho = 0; rho < noc::Mesh::kNumPaths; ++rho) {
        s.path_choice[pair] = rho;
        const double makespan = reschedule(p, s, actual_comm_times(p, s));
        if (makespan < fallback_makespan) {
          fallback_makespan = makespan;
          fallback_rho = rho;
        }
        if (makespan > p.horizon() + kTimeTol) continue;  // (9)
        const double cost = deploy::evaluate_energy(p, s).max_proc();
        if (cost < best_cost - 1e-15) {
          best_cost = cost;
          best_rho = rho;
        }
      }
      // The fallback keeps the best-makespan path even though no path met the
      // horizon for this pair in isolation; count it so profiles show how
      // often Algorithm 3 had to repair feasibility this way.
      if (best_rho < 0) ND_OBS_COUNT("heur.phase3.path_fallbacks", 1);
      s.path_choice[pair] = (best_rho >= 0) ? best_rho : fallback_rho;
    }
  }
  const double makespan = reschedule(p, s, actual_comm_times(p, s));
  if (makespan > p.horizon() + kTimeTol) {
    std::ostringstream os;
    os << "makespan " << makespan << " exceeds horizon " << p.horizon();
    set_fail(why, os.str());
    return false;
  }
  return true;
}

HeuristicResult solve_heuristic(const deploy::DeploymentProblem& p, const HeuristicOptions& opt) {
  Stopwatch clock;
  const obs::Span solve_span("heur.solve", opt.telemetry, /*hist=*/true);
  HeuristicResult res;
  res.solution = deploy::DeploymentSolution::empty(p);
  std::string why;
  bool ok;
  {
    const obs::Span span("heur.phase1", opt.telemetry, /*hist=*/true);
    ok = phase1_frequency_and_duplication(p, res.solution, &why);
  }
  if (!ok) {
    res.why = "phase1: " + why;
    res.seconds = clock.seconds();
    return res;
  }
  {
    const obs::Span span("heur.phase2", opt.telemetry, /*hist=*/true);
    ok = phase2_allocation_and_scheduling(p, res.solution, opt.phase2, &why);
  }
  if (!ok) {
    res.why = "phase2: " + why;
    res.seconds = clock.seconds();
    return res;
  }
  {
    const obs::Span span("heur.phase3", opt.telemetry, /*hist=*/true);
    if (opt.select_paths) {
      ok = phase3_path_selection(p, res.solution, &why);
    } else {
      // Single-path ablation: freeze ρ = 0 everywhere, keep the real schedule.
      std::fill(res.solution.path_choice.begin(), res.solution.path_choice.end(), 0);
      const double makespan = reschedule(p, res.solution, actual_comm_times(p, res.solution));
      ok = makespan <= p.horizon() + kTimeTol;
      if (!ok) why = "fixed-path makespan exceeds horizon";
    }
  }
  if (!ok) {
    res.why = "phase3: " + why;
    res.seconds = clock.seconds();
    return res;
  }
  res.feasible = true;
  res.seconds = clock.seconds();
  return res;
}

}  // namespace nd::heuristic
