// The decomposition-based heuristic of §III: the deployment problem P1 is
// split into three subproblems solved in sequence —
//   P2 (Algorithm 1): frequency assignment + task duplication,
//   P3 (Algorithm 2): task allocation + scheduling (with placeholder
//                     average communication costs),
//   P4 (Algorithm 3): per-pair routing path selection (real costs).
// Each phase is exposed separately for unit tests and the ablation bench.
#pragma once

#include <string>

#include "deploy/problem.hpp"
#include "deploy/solution.hpp"

namespace nd::heuristic {

struct Phase2Options {
  /// Algorithm 2 sorts by layer, then by descending WCEC. Disabling uses
  /// plain index order (ablation).
  bool layered_sort = true;
  /// Use the paper's fixed per-processor average communication-energy
  /// placeholder when ranking processors. Disabling ignores communication
  /// during allocation (ablation).
  bool comm_placeholder = true;
};

struct HeuristicOptions {
  Phase2Options phase2;
  /// Algorithm 3 greedy path choice; false freezes every pair to path 0
  /// (ablation / single-path baseline).
  bool select_paths = true;
  /// Emit per-phase spans and counters into the obs telemetry layer. Only
  /// observable while an obs session is collecting, and free when
  /// NOCDEPLOY_OBS is compiled out.
  bool telemetry = true;
};

struct HeuristicResult {
  bool feasible = false;
  deploy::DeploymentSolution solution;
  std::string why;      ///< first failure reason when infeasible
  double seconds = 0.0;
};

/// Algorithm 1. Fills solution.exists and solution.level. Returns false (with
/// `why`) when some task has no deadline- or reliability-feasible level.
bool phase1_frequency_and_duplication(const deploy::DeploymentProblem& p,
                                      deploy::DeploymentSolution& s, std::string* why = nullptr);

/// Algorithm 2. Requires phase 1 output; fills solution.proc and a schedule
/// based on placeholder communication times.
bool phase2_allocation_and_scheduling(const deploy::DeploymentProblem& p,
                                      deploy::DeploymentSolution& s,
                                      const Phase2Options& opt = {}, std::string* why = nullptr);

/// Algorithm 3. Requires phases 1–2; fills solution.path_choice and the final
/// schedule with real per-path communication times.
bool phase3_path_selection(const deploy::DeploymentProblem& p, deploy::DeploymentSolution& s,
                           std::string* why = nullptr);

/// Task processing order used by Algorithm 2 (layer, then WCEC descending,
/// then index) over existing tasks only.
std::vector<int> allocation_order(const deploy::DeploymentProblem& p,
                                  const deploy::DeploymentSolution& s, bool layered_sort);

/// List scheduler shared by phases 2 and 3: keeps exists/level/proc and the
/// allocation order, recomputes start/end with the given communication time
/// per task (start_j = max(max_pred end, proc available) + comm_j).
/// Returns the makespan.
double reschedule(const deploy::DeploymentProblem& p, deploy::DeploymentSolution& s,
                  const std::vector<double>& comm_into_task);

/// Full three-phase heuristic.
HeuristicResult solve_heuristic(const deploy::DeploymentProblem& p,
                                const HeuristicOptions& opt = {});

}  // namespace nd::heuristic
