// Simulated-annealing baseline for the deployment problem.
//
// The task-mapping literature the paper positions against (Table I) commonly
// uses metaheuristics; this module provides one as an independent baseline
// and as a cross-check on the decomposition heuristic: it explores the SAME
// decision space (levels, allocation, path choice — duplication is derived
// from eq. (4), schedules from the list scheduler) under a Metropolis
// acceptance rule with geometric cooling.
//
// Determinism: fully driven by the seeded PRNG in the options.
#pragma once

#include <cstdint>

#include "deploy/problem.hpp"
#include "deploy/solution.hpp"

namespace nd::heuristic {

struct AnnealOptions {
  int iterations = 30000;
  double initial_temp_frac = 0.10;  ///< T0 as a fraction of the initial objective
  double cooling = 0.9995;          ///< geometric factor per iteration
  double infeasibility_weight = 4.0;  ///< penalty scale for horizon overshoot
  std::uint64_t seed = 1;
  /// Emit a run span plus proposal/acceptance/repair counters into the obs
  /// telemetry layer. Only observable while an obs session is collecting, and
  /// free when NOCDEPLOY_OBS is compiled out.
  bool telemetry = true;
};

struct AnnealResult {
  bool feasible = false;              ///< a horizon-feasible state was found
  deploy::DeploymentSolution solution;  ///< best feasible (or least-infeasible) state
  double objective = 0.0;             ///< BE objective of `solution`
  int accepted_moves = 0;
  double seconds = 0.0;
};

AnnealResult solve_annealing(const deploy::DeploymentProblem& p, const AnnealOptions& opt = {});

}  // namespace nd::heuristic
