#include "heuristic/annealing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "common/stopwatch.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/phases.hpp"
#include "obs/obs.hpp"

namespace nd::heuristic {

namespace {

/// Mutable annealing state: level/proc per task slot, path per pair.
/// Duplication (h) and the schedule are derived, never stored.
struct State {
  std::vector<int> level;  // 2M (duplicate slots meaningful only when derived-on)
  std::vector<int> proc;   // 2M
  std::vector<int> path;   // N*N
};

class Annealer {
 public:
  Annealer(const deploy::DeploymentProblem& p, const AnnealOptions& opt)
      : p_(p), opt_(opt), prng_(opt.seed) {
    const int levels = p_.num_levels();
    // Deadline-feasible level sets per task slot, and for original levels the
    // duplicate-level sets that satisfy the pairwise reliability cut (5).
    feasible_levels_.resize(static_cast<std::size_t>(p_.num_total_tasks()));
    for (int i = 0; i < p_.num_total_tasks(); ++i) {
      for (int l = 0; l < levels; ++l) {
        if (p_.vf().exec_time(p_.dup().wcec(i), l) <= p_.dup().deadline(i) + 1e-12) {
          feasible_levels_[static_cast<std::size_t>(i)].push_back(l);
        }
      }
    }
  }

  AnnealResult run() {
    Stopwatch clock;
    const obs::Span run_span("anneal.run", opt_.telemetry);
    AnnealResult res;

    State s = initial_state();
    double cost = evaluate(s, &res.solution, &res.feasible, &res.objective);
    State best = s;
    double best_cost = cost;

    double temp = std::max(1e-12, opt_.initial_temp_frac * std::abs(cost));
    for (int it = 0; it < opt_.iterations; ++it) {
      State cand = s;
      mutate(cand);
      deploy::DeploymentSolution cand_sol;
      bool cand_feasible = false;
      double cand_obj = 0.0;
      const double cand_cost = evaluate(cand, &cand_sol, &cand_feasible, &cand_obj);
      const double delta = cand_cost - cost;
      if (delta <= 0.0 || prng_.uniform() < std::exp(-delta / temp)) {
        s = std::move(cand);
        cost = cand_cost;
        ++res.accepted_moves;
        if (cost < best_cost) {
          best = s;
          best_cost = cost;
        }
        // Track the best strictly feasible deployment separately.
        if (cand_feasible &&
            (!res.feasible || cand_obj < res.objective - 1e-15)) {
          res.feasible = true;
          res.objective = cand_obj;
          res.solution = std::move(cand_sol);
        }
      }
      temp *= opt_.cooling;
    }
    if (!res.feasible) {
      // Report the least-bad state so callers can inspect it.
      deploy::DeploymentSolution sol;
      bool feas = false;
      double obj = 0.0;
      evaluate(best, &sol, &feas, &obj);
      res.solution = std::move(sol);
      res.objective = obj;
      res.feasible = feas;
    }
    res.seconds = clock.seconds();
    if (opt_.telemetry) {
      ND_OBS_COUNT("anneal.proposed", opt_.iterations);
      ND_OBS_COUNT("anneal.accepted", res.accepted_moves);
      ND_OBS_COUNT("anneal.repair_failures", repair_failures_);
    }
    return res;
  }

 private:
  State initial_state() {
    State s;
    const auto total = static_cast<std::size_t>(p_.num_total_tasks());
    s.level.assign(total, 0);
    s.proc.assign(total, 0);
    s.path.assign(static_cast<std::size_t>(p_.num_procs()) * p_.num_procs(), 0);
    // Seed from the decomposition heuristic when it succeeds, otherwise from
    // a legal random state.
    const HeuristicResult h = solve_heuristic(p_);
    for (int i = 0; i < p_.num_total_tasks(); ++i) {
      const auto iu = static_cast<std::size_t>(i);
      const auto& fl = feasible_levels_[iu];
      ND_REQUIRE(!fl.empty(), "annealing requires a deadline-feasible level per task");
      if (h.feasible && h.solution.level[iu] >= 0) {
        s.level[iu] = h.solution.level[iu];
      } else {
        s.level[iu] = fl[static_cast<std::size_t>(prng_.uniform_int(
            0, static_cast<std::int64_t>(fl.size()) - 1))];
      }
      s.proc[iu] = (h.feasible && h.solution.proc[iu] >= 0)
                       ? h.solution.proc[iu]
                       : static_cast<int>(prng_.uniform_int(0, p_.num_procs() - 1));
    }
    if (h.feasible) s.path = h.solution.path_choice;
    return s;
  }

  void mutate(State& s) {
    const int kind = static_cast<int>(prng_.uniform_int(0, 3));
    const int total = p_.num_total_tasks();
    switch (kind) {
      case 0: {  // re-level a task slot
        const int i = static_cast<int>(prng_.uniform_int(0, total - 1));
        const auto& fl = feasible_levels_[static_cast<std::size_t>(i)];
        s.level[static_cast<std::size_t>(i)] = fl[static_cast<std::size_t>(
            prng_.uniform_int(0, static_cast<std::int64_t>(fl.size()) - 1))];
        break;
      }
      case 1: {  // move a task to another processor
        const int i = static_cast<int>(prng_.uniform_int(0, total - 1));
        s.proc[static_cast<std::size_t>(i)] =
            static_cast<int>(prng_.uniform_int(0, p_.num_procs() - 1));
        break;
      }
      case 2: {  // flip one pair's path
        const int n = p_.num_procs();
        if (n < 2) break;
        int b = static_cast<int>(prng_.uniform_int(0, n - 1));
        int g = static_cast<int>(prng_.uniform_int(0, n - 2));
        if (g >= b) ++g;
        auto& c = s.path[static_cast<std::size_t>(b * n + g)];
        c = 1 - c;
        break;
      }
      default: {  // swap the processors of two task slots
        const int i = static_cast<int>(prng_.uniform_int(0, total - 1));
        const int j = static_cast<int>(prng_.uniform_int(0, total - 1));
        std::swap(s.proc[static_cast<std::size_t>(i)], s.proc[static_cast<std::size_t>(j)]);
        break;
      }
    }
  }

  /// Build the derived deployment (duplication per eq. (4), schedule via the
  /// list scheduler) and return the penalized cost.
  double evaluate(const State& s, deploy::DeploymentSolution* out, bool* feasible,
                  double* objective) {
    deploy::DeploymentSolution sol = deploy::DeploymentSolution::empty(p_);
    const int m = p_.num_tasks();
    bool rel_ok = true;
    for (int i = 0; i < m; ++i) {
      const auto iu = static_cast<std::size_t>(i);
      sol.level[iu] = s.level[iu];
      sol.proc[iu] = s.proc[iu];
      const double r = p_.fault().task_reliability(p_.dup().wcec(i), s.level[iu]);
      const int d = i + m;
      const auto du = static_cast<std::size_t>(d);
      if (r < p_.r_th()) {
        sol.exists[du] = 1;
        // The duplicate's level must close the reliability gap; deterministic
        // repair: walk up from the state's level until (5) holds.
        int ld = s.level[du];
        const int levels = p_.num_levels();
        while (ld < levels &&
               reliability::FaultModel::duplicated(
                   r, p_.fault().task_reliability(p_.dup().wcec(d), ld)) < p_.r_th()) {
          ++ld;
        }
        if (ld >= levels) {
          ld = levels - 1;  // best effort; penalized as infeasible below
          rel_ok = false;
          ++repair_failures_;
        }
        sol.level[du] = ld;
        sol.proc[du] = s.proc[du];
      }
    }
    sol.path_choice = s.path;
    // Schedule with real communication times.
    std::vector<double> comm(static_cast<std::size_t>(p_.num_total_tasks()), 0.0);
    for (int i = 0; i < p_.num_total_tasks(); ++i) {
      comm[static_cast<std::size_t>(i)] = deploy::comm_time_into(p_, sol, i);
    }
    const double makespan = reschedule(p_, sol, comm);
    const auto rep = deploy::evaluate_energy(p_, sol);
    const double over = std::max(0.0, makespan - p_.horizon()) / p_.horizon();
    *out = std::move(sol);
    // over is max(0, excess)/H — exactly 0 iff the horizon is met.
    *feasible = (over == 0.0) && rel_ok;  // fp-exact
    *objective = rep.max_proc();
    return rep.max_proc() *
           (1.0 + opt_.infeasibility_weight * (over + (rel_ok ? 0.0 : 1.0)));
  }

  const deploy::DeploymentProblem& p_;
  AnnealOptions opt_;
  Prng prng_;
  std::vector<std::vector<int>> feasible_levels_;
  long long repair_failures_ = 0;  ///< duplicate level could not close (5)
};

}  // namespace

AnnealResult solve_annealing(const deploy::DeploymentProblem& p, const AnnealOptions& opt) {
  return Annealer(p, opt).run();
}

}  // namespace nd::heuristic
