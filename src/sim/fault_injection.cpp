#include "sim/fault_injection.hpp"

#include <cmath>
#include <vector>

#include "common/check.hpp"
#include "common/prng.hpp"
#include "deploy/evaluate.hpp"
#include "obs/obs.hpp"

namespace nd::sim {

FaultCampaignResult run_fault_injection(const deploy::DeploymentProblem& p,
                                        const deploy::DeploymentSolution& s, int trials,
                                        std::uint64_t seed) {
  ND_REQUIRE(trials > 0, "need at least one trial");
  const int m = p.num_tasks();

  // Per-copy fault probabilities at the assigned levels.
  std::vector<double> fault_prob(static_cast<std::size_t>(p.num_total_tasks()), 1.0);
  for (int i = 0; i < p.num_total_tasks(); ++i) {
    if (s.exists[static_cast<std::size_t>(i)]) {
      fault_prob[static_cast<std::size_t>(i)] = 1.0 - deploy::task_reliability(p, s, i);
    }
  }

  Prng prng(seed);
  FaultCampaignResult res;
  res.trials = trials;
  const obs::Span campaign_span("sim.fault_campaign");
  long long injected = 0;
  for (int t = 0; t < trials; ++t) {
    bool mission_ok = true;
    for (int i = 0; i < m && mission_ok; ++i) {
      bool survived = !prng.bernoulli(fault_prob[static_cast<std::size_t>(i)]);
      if (!survived) {
        ++injected;
        const int d = i + m;
        if (s.exists[static_cast<std::size_t>(d)]) {
          survived = !prng.bernoulli(fault_prob[static_cast<std::size_t>(d)]);
          if (!survived) ++injected;
        }
      }
      mission_ok = survived;
    }
    res.successes += mission_ok ? 1 : 0;
  }
  res.observed = static_cast<double>(res.successes) / trials;
  ND_OBS_COUNT("sim.fault.trials", trials);
  ND_OBS_COUNT("sim.fault.injected", injected);

  res.predicted = 1.0;
  for (int i = 0; i < m; ++i) res.predicted *= deploy::effective_reliability(p, s, i);
  res.conf3sigma =
      3.0 * std::sqrt(std::max(res.predicted * (1.0 - res.predicted), 1e-12) / trials);
  return res;
}

}  // namespace nd::sim
