#include "sim/event_sim.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <queue>
#include <sstream>

#include "common/check.hpp"
#include "deploy/evaluate.hpp"
#include "obs/obs.hpp"

namespace nd::sim {

namespace {
constexpr double kTol = 1e-7;

bool edge_active(const task::DupEdge& e, const deploy::DeploymentSolution& s) {
  if (!s.exists[static_cast<std::size_t>(e.from)] || !s.exists[static_cast<std::size_t>(e.to)])
    return false;
  return std::all_of(e.gates.begin(), e.gates.end(),
                     [&](int g) { return s.exists[static_cast<std::size_t>(g)] != 0; });
}
}  // namespace

SimResult simulate(const deploy::DeploymentProblem& p, const deploy::DeploymentSolution& s,
                   const SimOptions& opts) {
  const int total = p.num_total_tasks();
  const int n = p.num_procs();
  SimResult res;
  res.sim_start.assign(static_cast<std::size_t>(total), 0.0);
  res.sim_end.assign(static_cast<std::size_t>(total), 0.0);

  // Per-processor dispatch queues in analytic start order (FIFO execution).
  std::vector<std::vector<int>> dispatch(static_cast<std::size_t>(n));
  std::vector<int> order;
  for (int i = 0; i < total; ++i)
    if (s.exists[static_cast<std::size_t>(i)]) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = s.start[static_cast<std::size_t>(a)];
    const double sb = s.start[static_cast<std::size_t>(b)];
    if (sa != sb) return sa < sb;
    return a < b;
  });
  for (const int i : order) dispatch[static_cast<std::size_t>(s.proc[static_cast<std::size_t>(i)])].push_back(i);

  // Pending inbound messages per task and counters.
  std::vector<int> missing_msgs(static_cast<std::size_t>(total), 0);
  std::vector<int> missing_preds(static_cast<std::size_t>(total), 0);
  std::vector<double> inbox_free(static_cast<std::size_t>(total), 0.0);
  std::vector<double> ready_at(static_cast<std::size_t>(total), 0.0);
  for (int i = 0; i < total; ++i) {
    if (!s.exists[static_cast<std::size_t>(i)]) continue;
    for (const int ei : p.dup().in_edges(i)) {
      const auto& e = p.dup().edges()[static_cast<std::size_t>(ei)];
      if (!edge_active(e, s)) continue;
      ++missing_preds[static_cast<std::size_t>(i)];
      const int beta = s.proc[static_cast<std::size_t>(e.from)];
      const int gamma = s.proc[static_cast<std::size_t>(e.to)];
      if (beta != gamma) ++missing_msgs[static_cast<std::size_t>(i)];
    }
  }

  // In-flight message state for the contention mode: current hop index along
  // its path. Keyed by edge index (each active cross-processor edge carries
  // exactly one message per run).
  struct Flight {
    std::vector<int> nodes;  // router sequence
    std::size_t hop = 0;     // next link to traverse: nodes[hop] -> nodes[hop+1]
  };
  std::map<int, Flight> flights;
  std::map<std::pair<int, int>, double> link_free;

  enum class Kind { kTaskFinish, kMsgDelivered, kMsgHop };
  struct Event {
    double time;
    Kind kind;
    int id;      // task (finish) or edge (delivery)
    bool operator>(const Event& o) const {
      if (time != o.time) return time > o.time;
      return id > o.id;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;

  std::vector<std::size_t> head(static_cast<std::size_t>(n), 0);
  std::vector<double> proc_free(static_cast<std::size_t>(n), 0.0);
  std::vector<char> started(static_cast<std::size_t>(total), 0);
  int remaining = static_cast<int>(order.size());
  double now = 0.0;

  // Try to start the head task of each processor queue.
  auto pump = [&] {
    for (int k = 0; k < n; ++k) {
      auto& q = dispatch[static_cast<std::size_t>(k)];
      while (head[static_cast<std::size_t>(k)] < q.size()) {
        const int i = q[head[static_cast<std::size_t>(k)]];
        const auto iu = static_cast<std::size_t>(i);
        if (started[iu]) {
          ++head[static_cast<std::size_t>(k)];
          continue;
        }
        if (missing_preds[iu] > 0 || missing_msgs[iu] > 0) break;
        const double start = std::max({now, proc_free[static_cast<std::size_t>(k)], ready_at[iu]});
        started[iu] = 1;
        res.sim_start[iu] = start;
        const double end = start + deploy::comp_time(p, s, i);
        res.sim_end[iu] = end;
        proc_free[static_cast<std::size_t>(k)] = end;
        events.push({end, Kind::kTaskFinish, i});
        ++head[static_cast<std::size_t>(k)];
      }
    }
  };

  const obs::Span run_span("sim.run", /*armed=*/true, /*hist=*/true);
  long long n_finish = 0, n_delivered = 0, n_hops = 0;
  std::size_t peak_events = 0;  // queue high-water, sampled each event turn

  pump();
  while (!events.empty()) {
    peak_events = std::max(peak_events, events.size());
    const Event ev = events.top();
    events.pop();
    now = ev.time;
    if (ev.kind == Kind::kTaskFinish) {
      ++n_finish;
      const int i = ev.id;
      --remaining;
      res.makespan = std::max(res.makespan, now);
      // Release outbound messages / unblock same-processor successors.
      for (const int ei : p.dup().out_edges(i)) {
        const auto& e = p.dup().edges()[static_cast<std::size_t>(ei)];
        if (!edge_active(e, s)) continue;
        const auto ju = static_cast<std::size_t>(e.to);
        --missing_preds[ju];
        ready_at[ju] = std::max(ready_at[ju], now);
        const int beta = s.proc[static_cast<std::size_t>(e.from)];
        const int gamma = s.proc[ju];
        if (beta != gamma) {
          const int rho = s.rho(beta, gamma, n);
          if (opts.link_contention) {
            Flight f;
            f.nodes = p.mesh().path_nodes(beta, gamma, rho);
            flights[ei] = std::move(f);
            events.push({now, Kind::kMsgHop, ei});
          } else {
            const double duration = e.bytes * p.mesh().time_per_byte(beta, gamma, rho);
            // Destination delivers one inbound message at a time.
            const double delivered = std::max(inbox_free[ju], now) + duration;
            inbox_free[ju] = delivered;
            events.push({delivered, Kind::kMsgDelivered, ei});
          }
        }
      }
    } else if (ev.kind == Kind::kMsgHop) {
      ++n_hops;
      // Contention mode: claim the next link of the path (store-and-forward);
      // busy links serialize competing messages.
      Flight& f = flights[ev.id];
      const auto& e = p.dup().edges()[static_cast<std::size_t>(ev.id)];
      if (f.hop + 1 >= f.nodes.size()) {
        // Arrived at the destination router: deliver through the inbox.
        const auto ju = static_cast<std::size_t>(e.to);
        const double delivered = std::max(inbox_free[ju], now);
        inbox_free[ju] = delivered;
        events.push({delivered, Kind::kMsgDelivered, ev.id});
      } else {
        const int u = f.nodes[f.hop];
        const int v = f.nodes[f.hop + 1];
        const double duration = e.bytes * p.mesh().hop_latency_per_byte(u, v);
        auto& busy = link_free[{u, v}];
        const double done = std::max(busy, now) + duration;
        busy = done;
        ++f.hop;
        events.push({done, Kind::kMsgHop, ev.id});
      }
    } else {
      ++n_delivered;
      const auto& e = p.dup().edges()[static_cast<std::size_t>(ev.id)];
      const auto ju = static_cast<std::size_t>(e.to);
      --missing_msgs[ju];
      ready_at[ju] = std::max(ready_at[ju], now);
    }
    pump();
  }

  ND_OBS_COUNT("sim.runs", 1);
  ND_OBS_COUNT("sim.events.task_finish", n_finish);
  ND_OBS_COUNT("sim.events.msg_delivered", n_delivered);
  ND_OBS_COUNT("sim.events.msg_hop", n_hops);
  ND_OBS_HIST("sim.events_per_run", static_cast<double>(n_finish + n_delivered + n_hops));
  ND_OBS_COUNT("mem.sim.event_queue_peak_bytes",
               static_cast<long long>(peak_events * sizeof(Event)));

  res.completed = (remaining == 0);
  if (!res.completed) {
    std::ostringstream os;
    os << remaining << " task(s) never became ready (dispatch order deadlock)";
    res.anomalies.push_back(os.str());
    ND_OBS_LOG(obs::LogLevel::kWarn, "sim-deadlock",
               {"remaining", static_cast<long long>(remaining)},
               {"events", n_finish + n_delivered + n_hops});
  }

  // Cross-check against the analytic schedule: simulation must not be later.
  res.horizon_met = true;
  res.deadlines_met = true;
  for (const int i : order) {
    const auto iu = static_cast<std::size_t>(i);
    if (!started[iu]) continue;
    if (res.sim_end[iu] > p.horizon() + kTol) res.horizon_met = false;
    if (res.sim_end[iu] - res.sim_start[iu] > p.dup().deadline(i) + kTol)
      res.deadlines_met = false;
    if (res.sim_start[iu] > s.start[iu] + kTol) {
      res.max_lateness = std::max(res.max_lateness, res.sim_start[iu] - s.start[iu]);
      ++res.late_tasks;
      if (!opts.link_contention) {
        std::ostringstream os;
        os << "task " << i << " simulated start " << res.sim_start[iu]
           << " exceeds analytic start " << s.start[iu];
        res.anomalies.push_back(os.str());
      }
    }
    if (res.sim_end[iu] > s.end[iu] + kTol && !opts.link_contention) {
      std::ostringstream os;
      os << "task " << i << " simulated end " << res.sim_end[iu]
         << " exceeds analytic end " << s.end[iu];
      res.anomalies.push_back(os.str());
    }
  }
  return res;
}

}  // namespace nd::sim
