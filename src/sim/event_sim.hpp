// Discrete-event execution of a deployment on the NoC platform.
//
// The analytic schedule produced by the MILP/heuristic uses the conservative
// communication model of eq. (6): a task may start only after its last
// predecessor finished AND all inbound transfers have been (sequentially)
// received. The simulator executes the deployment event-by-event — task
// completions release messages, messages traverse their selected path with
// the real per-byte latency, destination routers deliver one message at a
// time — and verifies that the analytic schedule is a safe upper bound:
// simulated start/end times never exceed the analytic ones (within tol),
// deadlines and the horizon hold, and the execution order per processor
// matches the schedule.
#pragma once

#include <string>
#include <vector>

#include "deploy/problem.hpp"
#include "deploy/solution.hpp"

namespace nd::sim {

struct SimOptions {
  /// Model per-link contention: a message claims each directed link of its
  /// path in turn, and a busy link serializes competing messages (store-and-
  /// forward). The paper's analytic model (eq. (6)) ignores inter-flow link
  /// contention, so in this mode simulated times MAY exceed the analytic
  /// schedule; the overshoot is reported in `max_lateness` instead of being
  /// flagged as an anomaly.
  bool link_contention = false;
};

struct SimResult {
  bool completed = false;  ///< every existing task executed
  double makespan = 0.0;
  std::vector<double> sim_start, sim_end;  ///< per task (2M), 0 for absent
  bool horizon_met = false;
  bool deadlines_met = false;
  /// Deviations from the analytic schedule's guarantees (empty on success;
  /// not populated in link-contention mode, where lateness is expected).
  std::vector<std::string> anomalies;
  /// Max simulated-start overshoot beyond the analytic start [s] and the
  /// number of tasks affected (nonzero only under link contention).
  double max_lateness = 0.0;
  int late_tasks = 0;

  [[nodiscard]] bool ok() const {
    return completed && horizon_met && deadlines_met && anomalies.empty();
  }
};

SimResult simulate(const deploy::DeploymentProblem& p, const deploy::DeploymentSolution& s,
                   const SimOptions& opts = {});

}  // namespace nd::sim
