// Monte-Carlo transient-fault injection.
//
// Each trial executes the deployment once; every task copy independently
// suffers a fault with probability 1 − r_il (the Poisson model evaluated at
// its assigned level). An original task's function survives the trial if at
// least one of its copies runs fault-free; the mission succeeds when every
// original task survives. The observed success ratio is compared against the
// analytic prediction Π_i r'_i, empirically validating eq. (5) end-to-end.
#pragma once

#include <cstdint>

#include "deploy/problem.hpp"
#include "deploy/solution.hpp"

namespace nd::sim {

struct FaultCampaignResult {
  int trials = 0;
  int successes = 0;
  double observed = 0.0;   ///< successes / trials
  double predicted = 0.0;  ///< Π_i effective_reliability(i)
  /// Monte-Carlo 3σ half-width on `observed` (normal approximation).
  double conf3sigma = 0.0;
};

FaultCampaignResult run_fault_injection(const deploy::DeploymentProblem& p,
                                        const deploy::DeploymentSolution& s, int trials,
                                        std::uint64_t seed);

}  // namespace nd::sim
