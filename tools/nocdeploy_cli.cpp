// nocdeploy command-line tool.
//
//   nocdeploy gen   --tasks 12 --rows 4 --cols 4 --alpha 1.5 --seed 7 -o prob.json
//   nocdeploy solve --problem prob.json --method heuristic|annealing|optimal
//                   [--time-limit 30] [-o sol.json] [--gantt] [--dot out.dot]
//   nocdeploy validate --problem prob.json --solution sol.json
//   nocdeploy simulate --problem prob.json --solution sol.json [--trials 100000]
//   nocdeploy lint     --problem prob.json [--model] [--presolve-report] [--json]
//   nocdeploy certify  --problem prob.json --method optimal|heuristic [--exact]
//                      [--emit-certificate c.json] [--emit-audit a.json] [-o sol.json]
//   nocdeploy certify  --problem prob.json --solution sol.json
//                      [--certificate c.json] [--audit a.json] [--exact] [--json]
//   nocdeploy verify   --problem prob.json --solution sol.json
//                      [--claimed-be X] [--no-contention] [--json]
//   nocdeploy crosscheck [--seeds N] [--first-seed S] [--tasks N] [--threads T] [--json]
//   nocdeploy sweep    [--seeds N] [--first-seed S] [--threads T] [--tasks N]
//                      [--time-limit SEC] [-o BENCH_sweep.json] [--json]
//                      [--append-history FILE]
//   nocdeploy bench diff OLD.json NEW.json [--sigma X] [--rel-floor X]
//                      [--abs-floor SEC] [--hist-rel X] [--json]
//   nocdeploy profile  [--problem P.json] [--tasks N] [--rows R] [--cols C]
//                      [--seed S] [--iters N] [--time-limit SEC] [--threads T]
//
// `--threads` (solve/certify with --method optimal, crosscheck) selects the
// MILP solver's thread count: 1 = sequential, >1 = work-sharing parallel
// branch-and-bound, 0 = machine default (honours NOCDEPLOY_THREADS).
//
// `--presolve on|off` (solve/certify with --method optimal, crosscheck)
// toggles the proof-carrying presolve: instance-level dominance/symmetry
// fixings (analysis/presolve) seeding the model-structure root passes
// (milp/presolve). Default on. `lint --presolve-report` prints the reduction
// summary and the canonical instance hash without solving, and re-proves the
// emitted log with the independent checker (docs/presolve.md).
//
// Telemetry (docs/observability.md): every command accepts `--stats` (print
// the per-subsystem stats table after the run) and `--trace FILE` (write
// Chrome trace_event JSON loadable in chrome://tracing or ui.perfetto.dev).
// `profile` exercises every subsystem on one instance and implies --stats.
//
// Exit status: 0 on success/valid, 1 on infeasible/invalid/lint-errors,
// 2 on usage error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/certify_bnb.hpp"
#include "bench_diff.hpp"
#include "sweep_runner.hpp"
#include "analysis/certify_lp.hpp"
#include "analysis/exact/certify_bnb_exact.hpp"
#include "analysis/exact/certify_lp_exact.hpp"
#include "analysis/exact/verify_deployment.hpp"
#include "analysis/crosscheck.hpp"
#include "analysis/lint_model.hpp"
#include "analysis/lint_problem.hpp"
#include "analysis/presolve/certify_presolve.hpp"
#include "analysis/presolve/instance_presolve.hpp"
#include "deploy/evaluate.hpp"
#include "deploy/export.hpp"
#include "deploy/serialize.hpp"
#include "deploy/validate.hpp"
#include "heuristic/annealing.hpp"
#include "heuristic/phases.hpp"
#include "lp/certificate.hpp"
#include "milp/audit.hpp"
#include "milp/presolve.hpp"
#include "model/formulation.hpp"
#include "obs/obs.hpp"
#include "sim/event_sim.hpp"
#include "sim/fault_injection.hpp"
#include "task/generator.hpp"

using namespace nd;  // NOLINT

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;
  std::vector<std::string> positionals;  ///< non-flag operands (bench only)

  [[nodiscard]] std::string get(const std::string& key, const std::string& def = "") const {
    const auto it = flags.find(key);
    return it == flags.end() ? def : it->second;
  }
  [[nodiscard]] double num(const std::string& key, double def) const {
    const auto it = flags.find(key);
    return it == flags.end() ? def : std::stod(it->second);
  }
  /// `--presolve on|off`, default on (a bare `--presolve` also means on).
  [[nodiscard]] bool presolve_on() const { return get("presolve", "on") != "off"; }
};

/// `--lp-engine tableau|revised`, default revised. Returns false (after
/// printing a usage error) on an unknown engine name.
bool parse_lp_engine(const Args& a, lp::EngineKind* out) {
  const std::string name = a.get("lp-engine", lp::to_string(lp::EngineKind::kRevised));
  if (!lp::engine_kind_from_string(name, out)) {
    std::fprintf(stderr, "error: unknown --lp-engine '%s' (expected tableau|revised)\n",
                 name.c_str());
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(stderr,
               "usage: nocdeploy <gen|solve|validate|simulate|lint> [flags]\n"
               "  gen      --tasks N --rows R --cols C --alpha A --r-th X --lambda L\n"
               "           --seed S -o problem.json\n"
               "  solve    --problem P.json --method heuristic|annealing|optimal\n"
               "           [--time-limit SEC] [--presolve on|off]\n"
               "           [--lp-engine tableau|revised] [-o solution.json]\n"
               "           [--gantt] [--dot FILE]\n"
               "  validate --problem P.json --solution S.json\n"
               "  simulate --problem P.json --solution S.json [--trials N]\n"
               "  lint     --problem P.json [--model] [--presolve-report] [--json]\n"
               "  certify  --problem P.json --method optimal|heuristic [--exact]\n"
               "           [--time-limit SEC] [--presolve on|off]\n"
               "           [--lp-engine tableau|revised]\n"
               "           [--emit-certificate F] [--emit-audit F]\n"
               "           [-o solution.json] [--json]\n"
               "  certify  --problem P.json --solution S.json\n"
               "           [--certificate F] [--audit F] [--exact] [--json]\n"
               "  verify   --problem P.json --solution S.json\n"
               "           [--claimed-be X] [--no-contention] [--json]\n"
               "  crosscheck [--seeds N] [--first-seed S] [--tasks N] [--rows R]\n"
               "           [--cols C] [--time-limit SEC] [--threads T]\n"
               "           [--presolve on|off] [--mesh-variation V] [--no-sim]\n"
               "           [--preset stress] [--lp-engine tableau|revised] [--json]\n"
               "  sweep    [--seeds N] [--first-seed S] [--threads T] [--tasks N]\n"
               "           [--rows R] [--cols C] [--time-limit SEC]\n"
               "           [--preset stress] [--lp-engine tableau|revised]\n"
               "           [-o BENCH_sweep.json] [--json] [--append-history FILE]\n"
               "  bench diff OLD.json NEW.json [--sigma X] [--rel-floor X]\n"
               "           [--abs-floor SEC] [--hist-rel X] [--json]\n"
               "  profile  [--problem P.json] [--tasks N] [--rows R] [--cols C]\n"
               "           [--seed S] [--iters N] [--time-limit SEC] [--threads T]\n"
               "           [--lp-engine tableau|revised]\n"
               "global telemetry flags: [--stats] [--trace FILE] [--log-json FILE]\n");
  return 2;
}

int cmd_gen(const Args& a) {
  Prng prng(static_cast<std::uint64_t>(a.num("seed", 1)));
  task::GenParams gen;
  gen.num_tasks = static_cast<int>(a.num("tasks", 12));
  gen.width = std::max(2, gen.num_tasks / 5);
  noc::MeshParams mesh;
  mesh.rows = static_cast<int>(a.num("rows", 4));
  mesh.cols = static_cast<int>(a.num("cols", 4));
  mesh.seed = static_cast<std::uint64_t>(a.num("seed", 1)) + 7777;
  deploy::DeploymentProblem p(task::generate_layered(prng, gen), mesh,
                              dvfs::VfTable::typical6(),
                              reliability::FaultParams{a.num("lambda", 2e-5), 3.0},
                              a.num("r-th", 0.995), 1.0);
  p.set_horizon(p.horizon_for_alpha(a.num("alpha", 1.5)));
  const std::string out = a.get("o", "problem.json");
  deploy::write_file(out, deploy::problem_to_json(p).dump(2) + "\n");
  std::printf("wrote %s (M=%d, %dx%d mesh, H=%.4f s)\n", out.c_str(), p.num_tasks(),
              mesh.rows, mesh.cols, p.horizon());
  return 0;
}

int report_and_save(const deploy::DeploymentProblem& p, const deploy::DeploymentSolution& s,
                    const Args& a, double seconds) {
  const auto rep = deploy::evaluate_energy(p, s);
  const auto val = deploy::validate(p, s);
  std::printf("deployment: E_max %.4f J, E_total %.4f J, phi %.3f, duplicates %d, %s "
              "(solved in %.3f s)\n",
              rep.max_proc(), rep.total(), rep.phi(), s.num_duplicates(p.num_tasks()),
              val.ok() ? "valid" : "INVALID", seconds);
  if (!val.ok()) std::printf("%s\n", val.summary().c_str());
  if (!a.get("o").empty()) {
    deploy::write_file(a.get("o"), deploy::solution_to_json(s).dump(2) + "\n");
    std::printf("wrote %s\n", a.get("o").c_str());
  }
  if (a.flags.count("gantt") != 0) std::printf("\n%s", deploy::gantt_ascii(p, s).c_str());
  if (!a.get("dot").empty()) {
    deploy::write_file(a.get("dot"), deploy::deployment_to_dot(p, s));
    std::printf("wrote %s\n", a.get("dot").c_str());
  }
  return val.ok() ? 0 : 1;
}

int cmd_solve(const Args& a) {
  if (a.get("problem").empty()) return usage();
  auto p = deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  // Warn-only pre-solve lint: report model defects but always proceed.
  const auto lint = analysis::lint_problem(*p);
  if (!lint.empty()) {
    std::fprintf(stderr, "lint: %s\n%s", lint.summary().c_str(),
                 lint.to_table().c_str());
  }
  const std::string method = a.get("method", "heuristic");
  if (method == "heuristic") {
    const auto res = heuristic::solve_heuristic(*p);
    if (!res.feasible) {
      std::printf("infeasible: %s\n", res.why.c_str());
      return 1;
    }
    return report_and_save(*p, res.solution, a, res.seconds);
  }
  if (method == "annealing") {
    heuristic::AnnealOptions opt;
    opt.seed = static_cast<std::uint64_t>(a.num("seed", 1));
    opt.iterations = static_cast<int>(a.num("iters", 30000));
    const auto res = heuristic::solve_annealing(*p, opt);
    if (!res.feasible) {
      std::printf("annealing found no feasible deployment\n");
      return 1;
    }
    return report_and_save(*p, res.solution, a, res.seconds);
  }
  if (method == "optimal") {
    const auto warm = heuristic::solve_heuristic(*p);
    // Built by hand (instead of via model::solve_optimal) so the instance-
    // level proof-carrying reductions can seed the solver's root presolve.
    const model::Formulation f(*p);
    std::vector<double> warm_point;
    milp::MipOptions mopt;
    mopt.time_limit_s = a.num("time-limit", 60.0);
    mopt.num_threads = static_cast<int>(a.num("threads", 1));
    mopt.presolve = a.presolve_on();
    if (!parse_lp_engine(a, &mopt.lp_engine)) return 2;
    if (warm.feasible) {
      warm_point = f.encode(warm.solution);
      mopt.warm_start = &warm_point;
    }
    mopt.completion = [&f](const std::vector<double>& lp_point, std::vector<double>* out) {
      return f.complete(lp_point, out);
    };
    analysis::InstancePresolveResult ipre;
    if (mopt.presolve) {
      analysis::InstancePresolveOptions iopt;
      if (warm.feasible) iopt.warm = &warm_point;
      ipre = analysis::instance_reductions(f, iopt);
      mopt.instance_reductions = &ipre.log;
    }
    const auto mip = milp::solve(f.model(), mopt);
    std::printf("MILP status: %s, nodes %lld, lp-iters %d, bound %.6f, gap %.2f%%\n",
                to_string(mip.status), static_cast<long long>(mip.nodes),
                mip.lp_iterations, mip.best_bound, 100.0 * mip.gap());
    if (mopt.presolve) {
      std::printf("presolve: -%d rows -%d cols (%d instance fixing(s): %d dominance, "
                  "%d twin, %d orbit)\n",
                  mip.presolve_stats.rows_removed, mip.presolve_stats.cols_removed,
                  ipre.dominance_fixings + ipre.twin_fixings + ipre.orbit_fixings,
                  ipre.dominance_fixings, ipre.twin_fixings, ipre.orbit_fixings);
    }
    if (!mip.has_solution()) return 1;
    return report_and_save(*p, f.decode(mip.x), a, mip.seconds);
  }
  return usage();
}

int cmd_validate(const Args& a) {
  if (a.get("problem").empty() || a.get("solution").empty()) return usage();
  auto p = deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  const auto s =
      deploy::solution_from_json(json::parse(deploy::read_file(a.get("solution"))), *p);
  const auto val = deploy::validate(*p, s);
  std::printf("%s\n", val.summary().c_str());
  return val.ok() ? 0 : 1;
}

int cmd_lint(const Args& a) {
  if (a.get("problem").empty()) return usage();
  auto p = deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  auto rep = analysis::lint_problem(*p);
  if (a.flags.count("model") != 0) {
    // Also build the MILP formulation and lint the generated model.
    const model::Formulation formulation(*p);
    rep.merge(analysis::lint_model(formulation.model()));
  }
  if (a.flags.count("presolve-report") != 0) {
    // Static presolve analysis without solving: run the instance passes and
    // the model-structure passes, print the reduction footprint and the
    // canonical hash, and dogfood the emitted log through the independent
    // checker — a rejected record here is a presolve bug, not a model defect.
    const model::Formulation f(*p);
    const auto ipre = analysis::instance_reductions(f);
    const auto pm = milp::presolve_model(f.model(), &ipre.log);
    analysis::CertifyPresolveOptions po;
    po.formulation = &f;
    rep.merge(analysis::certify_presolve(f.model(), pm.log, po));
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(ipre.log.canonical_hash));
    // Info diagnostics so --json carries the report too.
    rep.add(analysis::Severity::kInfo, analysis::codes::kPresolveNote, "presolve",
            std::string("canonical instance hash ") + hash);
    rep.add(analysis::Severity::kInfo, analysis::codes::kPresolveNote, "presolve",
            std::to_string(ipre.automorphisms) + " mesh automorphism(s); fixings: " +
                std::to_string(ipre.dominance_fixings) + " dominance, " +
                std::to_string(ipre.twin_fixings) + " twin, " +
                std::to_string(ipre.orbit_fixings) + " orbit");
    const auto& st = pm.map.stats;
    rep.add(analysis::Severity::kInfo, analysis::codes::kPresolveNote, "presolve",
            "model passes: -" + std::to_string(st.rows_removed) + " rows, -" +
                std::to_string(st.cols_removed) + " cols (" +
                std::to_string(st.cols_pinned) + " pinned), " +
                std::to_string(st.bound_tightenings) + " bound + " +
                std::to_string(st.coef_tightenings) + " coef tightening(s), " +
                std::to_string(pm.rounds) + " round(s); " +
                std::to_string(pm.log.reductions.size()) + " record(s) re-proved");
  }
  if (a.flags.count("json") != 0) {
    std::printf("%s\n", rep.to_json().dump(2).c_str());
  } else {
    if (!rep.empty()) std::printf("%s", rep.to_table().c_str());
    std::printf("lint: %s\n", rep.summary().c_str());
  }
  return rep.num_errors() > 0 ? 1 : 0;
}

/// Shared tail of the certify modes: render the report, honour --json, exit 1
/// on any error diagnostic.
int finish_certify(const analysis::Report& rep, const Args& a) {
  if (a.flags.count("json") != 0) {
    std::printf("%s\n", rep.to_json().dump(2).c_str());
  } else {
    if (!rep.empty()) std::printf("%s", rep.to_table().c_str());
    std::printf("certify: %s\n", rep.num_errors() > 0 ? "REJECTED" : "accepted");
    std::printf("certify: %s\n", rep.summary().c_str());
  }
  return rep.num_errors() > 0 ? 1 : 0;
}

/// Validate + event-simulate one deployment into certify diagnostics.
void certify_deployment(const deploy::DeploymentProblem& p,
                        const deploy::DeploymentSolution& s, const std::string& who,
                        analysis::Report& rep) {
  const auto val = deploy::validate(p, s);
  if (!val.ok()) {
    rep.add(analysis::Severity::kError, analysis::codes::kXcheckSolutionInvalid, who,
            val.violations.front());
  }
  const auto sr = sim::simulate(p, s);
  if (!sr.ok()) {
    rep.add(analysis::Severity::kError, analysis::codes::kXcheckSimDivergence, who,
            sr.anomalies.empty() ? "simulation failed" : sr.anomalies.front());
  }
}

/// Exact static verification of one deployment (certify --exact): the claimed
/// objective is the float evaluator's BE, which the exact aggregation must
/// reproduce within the derived envelope.
void verify_deployment_exact(const deploy::DeploymentProblem& p,
                             const deploy::DeploymentSolution& s, analysis::Report& rep) {
  analysis::VerifyDeploymentOptions vopt;
  vopt.claimed_be = deploy::evaluate_energy(p, s).max_proc();
  rep.merge(analysis::verify_deployment(p, s, vopt).report);
}

int cmd_certify(const Args& a) {
  if (a.get("problem").empty()) return usage();
  auto p = deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  analysis::Report rep;
  const std::string method = a.get("method");
  const bool exact = a.flags.count("exact") != 0;

  if (method.empty()) {
    // File mode: certify an existing solution (plus optional certificate and
    // audit artifacts from an earlier `certify --method optimal` run).
    if (a.get("solution").empty()) return usage();
    const auto s =
        deploy::solution_from_json(json::parse(deploy::read_file(a.get("solution"))), *p);
    certify_deployment(*p, s, "solution", rep);
    if (exact) verify_deployment_exact(*p, s, rep);
    const double be = deploy::evaluate_energy(*p, s).max_proc();
    if (!a.get("certificate").empty() || !a.get("audit").empty()) {
      const model::Formulation f(*p);
      if (!a.get("certificate").empty()) {
        const auto cert =
            lp::certificate_from_json(json::parse(deploy::read_file(a.get("certificate"))));
        rep.merge(analysis::certify_lp(f.model().lp(), cert));
        if (exact) rep.merge(analysis::certify_lp_exact(f.model().lp(), cert).report);
        // The root LP relaxation lower-bounds every deployment's BE energy.
        if (cert.status == lp::SolveStatus::kOptimal && be < cert.obj - 1e-6 * (1.0 + cert.obj)) {
          rep.add(analysis::Severity::kError, analysis::codes::kXcheckBeBelowOptimal,
                  "solution", "BE energy beats the certified LP lower bound");
        }
      }
      if (!a.get("audit").empty()) {
        const auto audit =
            milp::audit_from_json(json::parse(deploy::read_file(a.get("audit"))));
        analysis::CertifyBnbOptions co;
        co.formulation = &f;  // re-proves instance-tagged presolve reductions
        rep.merge(analysis::certify_bnb(f.model(), audit, co));
        if (exact) {
          analysis::CertifyBnbExactOptions bo;
          bo.formulation = &f;
          rep.merge(analysis::certify_bnb_exact(f.model(), audit, bo).report);
        }
        // Presolved audits record the objective in reduced space; the
        // original-space claim is obj + presolve_shift.
        const double audit_obj = audit.obj + (audit.presolved ? audit.presolve_shift : 0.0);
        if ((audit.status == milp::MipStatus::kOptimal ||
             audit.status == milp::MipStatus::kFeasible) &&
            std::abs(audit_obj - be) > 1e-6 * (1.0 + std::abs(audit_obj))) {
          rep.add(analysis::Severity::kError, analysis::codes::kBnbIncumbentMismatch,
                  "solution", "solution BE energy does not match the audited objective");
        }
      }
    }
    return finish_certify(rep, a);
  }

  if (method == "heuristic") {
    const auto res = heuristic::solve_heuristic(*p);
    if (!res.feasible) {
      rep.add(analysis::Severity::kError, analysis::codes::kXcheckHeuristicInfeasible,
              "heuristic", res.why);
      return finish_certify(rep, a);
    }
    certify_deployment(*p, res.solution, "heuristic", rep);
    if (exact) verify_deployment_exact(*p, res.solution, rep);
    if (!a.get("o").empty()) {
      deploy::write_file(a.get("o"), deploy::solution_to_json(res.solution).dump(2) + "\n");
    }
    return finish_certify(rep, a);
  }

  if (method == "optimal") {
    const auto warm = heuristic::solve_heuristic(*p);
    const model::Formulation f(*p);
    std::vector<double> warm_point;
    milp::MipOptions mopt;
    mopt.time_limit_s = a.num("time-limit", 60.0);
    mopt.num_threads = static_cast<int>(a.num("threads", 1));
    if (!parse_lp_engine(a, &mopt.lp_engine)) return 2;
    if (warm.feasible) {
      warm_point = f.encode(warm.solution);
      mopt.warm_start = &warm_point;
    }
    mopt.completion = [&f](const std::vector<double>& lp_point, std::vector<double>* out) {
      return f.complete(lp_point, out);
    };
    mopt.presolve = a.presolve_on();
    analysis::InstancePresolveResult ipre;
    if (mopt.presolve) {
      analysis::InstancePresolveOptions iopt;
      if (warm.feasible) iopt.warm = &warm_point;
      ipre = analysis::instance_reductions(f, iopt);
      mopt.instance_reductions = &ipre.log;
    }
    milp::AuditLog audit;
    mopt.audit = &audit;
    const auto mip = milp::solve(f.model(), mopt);
    std::printf("MILP status: %s, nodes %lld, bound %.6f\n", to_string(mip.status),
                static_cast<long long>(mip.nodes), mip.best_bound);
    analysis::CertifyBnbOptions co;
    co.formulation = &f;  // re-proves instance-tagged presolve reductions
    rep.merge(analysis::certify_bnb(f.model(), audit, co));
    if (exact) {
      analysis::CertifyBnbExactOptions bopt;
      bopt.lp_time_limit_s = a.num("exact-lp-budget", bopt.lp_time_limit_s);
      bopt.formulation = &f;
      rep.merge(analysis::certify_bnb_exact(f.model(), audit, bopt).report);
    }
    if (mip.has_solution()) {
      certify_deployment(*p, f.decode(mip.x), "milp", rep);
      if (exact) verify_deployment_exact(*p, f.decode(mip.x), rep);
      if (!a.get("o").empty()) {
        deploy::write_file(a.get("o"),
                           deploy::solution_to_json(f.decode(mip.x)).dump(2) + "\n");
      }
    } else if (warm.feasible) {
      rep.add(analysis::Severity::kError, analysis::codes::kXcheckMilpFailed, "milp",
              std::string("status '") + to_string(mip.status) +
                  "' despite a feasible warm start");
      // Solver failure: flush the flight recorder so the events leading up to
      // the failed solve survive (docs/observability.md).
      ND_OBS_LOG(obs::LogLevel::kError, "milp-failed", {"status", to_string(mip.status)},
                 {"nodes", static_cast<long long>(mip.nodes)});
    }
    if (!a.get("emit-certificate").empty()) {
      deploy::write_file(a.get("emit-certificate"),
                         lp::certificate_to_json(audit.root_cert).dump(2) + "\n");
    }
    if (!a.get("emit-audit").empty()) {
      deploy::write_file(a.get("emit-audit"), milp::audit_to_json(audit).dump(2) + "\n");
    }
    return finish_certify(rep, a);
  }
  return usage();
}

/// Stand-alone exact static verifier: proves schedulability, reliability and
/// energy of a saved deployment without running the event simulator.
int cmd_verify(const Args& a) {
  if (a.get("problem").empty() || a.get("solution").empty()) return usage();
  auto p = deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  const auto s =
      deploy::solution_from_json(json::parse(deploy::read_file(a.get("solution"))), *p);
  analysis::VerifyDeploymentOptions vopt;
  vopt.claimed_be = a.get("claimed-be").empty()
                        ? deploy::evaluate_energy(*p, s).max_proc()
                        : a.num("claimed-be", 0.0);
  vopt.contention = a.flags.count("no-contention") == 0;
  const auto out = analysis::verify_deployment(*p, s, vopt);
  if (a.flags.count("json") != 0) {
    std::printf("%s\n", out.report.to_json().dump(2).c_str());
  } else {
    if (!out.report.empty()) std::printf("%s", out.report.to_table().c_str());
    std::printf("verify: exact makespan %.6f s (H %.4f s), exact BE %.6f J\n",
                out.exact_makespan.to_double(), p->horizon(), out.exact_be.to_double());
    std::printf("verify: %s\n", out.accepted() ? "PROVED" : "REJECTED");
    std::printf("verify: %s\n", out.report.summary().c_str());
  }
  return out.accepted() ? 0 : 1;
}

int cmd_crosscheck(const Args& a) {
  analysis::CrosscheckOptions opt;
  // `--preset stress` mirrors bench::sweep_stress() (explicit flags below
  // still override the preset's shape).
  if (a.get("preset") == "stress") {
    const bench::Scale st = bench::sweep_stress();
    opt.num_tasks = st.num_tasks;
    opt.rows = st.rows;
    opt.cols = st.cols;
    opt.mesh_variation = st.mesh_variation;
  } else if (!a.get("preset").empty()) {
    std::fprintf(stderr, "error: unknown --preset '%s' (expected stress)\n",
                 a.get("preset").c_str());
    return 2;
  }
  opt.num_tasks = static_cast<int>(a.num("tasks", opt.num_tasks));
  opt.rows = static_cast<int>(a.num("rows", opt.rows));
  opt.cols = static_cast<int>(a.num("cols", opt.cols));
  opt.milp_time_limit_s = a.num("time-limit", opt.milp_time_limit_s);
  opt.num_threads = static_cast<int>(a.num("threads", opt.num_threads));
  opt.mesh_variation = a.num("mesh-variation", opt.mesh_variation);
  opt.presolve = a.presolve_on();
  if (!parse_lp_engine(a, &opt.lp_engine)) return 2;
  opt.run_simulation = a.flags.count("no-sim") == 0;
  opt.verbose = a.flags.count("json") == 0;
  const auto first = static_cast<std::uint64_t>(a.num("first-seed", 1));
  const int count = static_cast<int>(a.num("seeds", 10));
  const auto rep = analysis::crosscheck_range(first, count, opt);
  if (a.flags.count("json") != 0) {
    std::printf("%s\n", rep.to_json().dump(2).c_str());
  } else {
    if (!rep.empty()) std::printf("%s", rep.to_table().c_str());
    std::printf("crosscheck: %d seed(s), %s\n", count, rep.summary().c_str());
  }
  return rep.num_errors() > 0 ? 1 : 0;
}

int cmd_sweep(const Args& a) {
  bench::SweepOptions opt;
  if (a.get("preset") == "stress") {
    opt.scale = bench::sweep_stress();
  } else if (!a.get("preset").empty()) {
    std::fprintf(stderr, "error: unknown --preset '%s' (expected stress)\n",
                 a.get("preset").c_str());
    return 2;
  }
  opt.seeds = static_cast<int>(a.num("seeds", opt.seeds));
  opt.first_seed = static_cast<std::uint64_t>(a.num("first-seed", 1));
  opt.threads = static_cast<int>(a.num("threads", 0));
  opt.time_limit_s = a.num("time-limit", opt.time_limit_s);
  opt.scale.num_tasks = static_cast<int>(a.num("tasks", opt.scale.num_tasks));
  opt.scale.rows = static_cast<int>(a.num("rows", opt.scale.rows));
  opt.scale.cols = static_cast<int>(a.num("cols", opt.scale.cols));
  if (!parse_lp_engine(a, &opt.lp_engine)) return 2;
  opt.verbose = a.flags.count("json") == 0;
  const auto res = bench::run_sweep(opt);
  const auto doc = res.to_json(opt);
  const std::string out = a.get("o", "BENCH_sweep.json");
  if (!out.empty()) deploy::write_file(out, doc.dump(2) + "\n");
  if (a.flags.count("json") != 0) {
    std::printf("%s\n", doc.dump(2).c_str());
  } else {
    std::printf("sweep: %d seed(s), %d thread(s): serial %.3f s, pooled %.3f s, "
                "speedup %.2fx, %d mismatch(es)\n",
                opt.seeds, res.threads_used, res.serial_wall_s, res.parallel_wall_s,
                res.speedup, res.mismatches);
    std::printf("sweep: presolve off %.3f s (%.2fx speedup from presolve), "
                "-%d rows -%d cols total, %d presolve mismatch(es)\n",
                res.presolve_off_wall_s, res.presolve_speedup, res.rows_removed_total,
                res.cols_removed_total, res.presolve_mismatches);
    if (!out.empty()) std::printf("wrote %s\n", out.c_str());
  }
  // --append-history FILE: append one compact JSONL line per run so repeated
  // sweeps build a perf trajectory (EXPERIMENTS.md). Compact dump is already
  // locale-independent; std::time gives a plain unix timestamp.
  const std::string hist_path = a.get("append-history");
  if (!hist_path.empty()) {
    json::Object line;
    line.emplace_back("unix_time", static_cast<double>(std::time(nullptr)));
    line.emplace_back("schema", std::string("nocdeploy-sweep/4"));
    line.emplace_back("seeds", static_cast<double>(opt.seeds));
    line.emplace_back("threads", static_cast<double>(res.threads_used));
    line.emplace_back("serial_wall_s", res.serial_wall_s);
    line.emplace_back("parallel_wall_s", res.parallel_wall_s);
    line.emplace_back("presolve_off_wall_s", res.presolve_off_wall_s);
    line.emplace_back("speedup", res.speedup);
    line.emplace_back("presolve_speedup", res.presolve_speedup);
    line.emplace_back("mismatches", static_cast<double>(res.mismatches));
    line.emplace_back("peak_rss_bytes", static_cast<double>(res.peak_rss_bytes));
    std::FILE* f = std::fopen(hist_path.c_str(), "a");
    if (f == nullptr) {
      std::fprintf(stderr, "error: cannot append to history file '%s'\n", hist_path.c_str());
      return 2;
    }
    const std::string dumped = json::Value(std::move(line)).dump();
    std::fprintf(f, "%s\n", dumped.c_str());
    std::fclose(f);
    std::printf("appended %s\n", hist_path.c_str());
  }
  return res.mismatches > 0 || res.presolve_mismatches > 0 ? 1 : 0;
}

/// `bench diff OLD.json NEW.json`: the regression observatory's CLI gate.
/// Loads two sweep documents, runs the noise-aware comparator, prints the
/// findings table (or --json) and exits with DiffResult's contract: 0 pass,
/// 1 regression, 3 incomparable (2 stays reserved for usage errors).
int cmd_bench(const Args& a) {
  if (a.positionals.size() != 3 || a.positionals[0] != "diff") return usage();
  bench::DiffOptions dopt;
  dopt.sigma = a.num("sigma", dopt.sigma);
  dopt.rel_floor = a.num("rel-floor", dopt.rel_floor);
  dopt.abs_floor_s = a.num("abs-floor", dopt.abs_floor_s);
  dopt.hist_rel = a.num("hist-rel", dopt.hist_rel);
  const json::Value old_doc = json::parse(deploy::read_file(a.positionals[1]));
  const json::Value new_doc = json::parse(deploy::read_file(a.positionals[2]));
  const bench::DiffResult res = bench::diff_sweeps(old_doc, new_doc, dopt);
  if (a.flags.count("json") != 0) {
    std::printf("%s\n", res.to_json().dump(2).c_str());
  } else {
    std::printf("%s", res.to_table().c_str());
  }
  if (res.exit_code() != 0) {
    // Gate failure is an error-level event: triggers the flight-recorder dump
    // so CI logs carry the structured verdict alongside the table.
    ND_OBS_LOG(obs::LogLevel::kError, "bench-diff-gate", {"regressions", res.regressions},
               {"comparable", res.comparable ? "yes" : "no"});
  }
  return res.exit_code();
}

/// Build the `profile` subject: an explicit problem file when given,
/// otherwise a small seeded instance (gen defaults scaled down so the whole
/// run takes seconds).
std::unique_ptr<deploy::DeploymentProblem> profile_instance(const Args& a) {
  if (!a.get("problem").empty()) {
    return deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  }
  Prng prng(static_cast<std::uint64_t>(a.num("seed", 1)));
  task::GenParams gen;
  gen.num_tasks = static_cast<int>(a.num("tasks", 10));
  gen.width = std::max(2, gen.num_tasks / 5);
  noc::MeshParams mesh;
  mesh.rows = static_cast<int>(a.num("rows", 3));
  mesh.cols = static_cast<int>(a.num("cols", 3));
  mesh.seed = static_cast<std::uint64_t>(a.num("seed", 1)) + 7777;
  auto p = std::make_unique<deploy::DeploymentProblem>(
      task::generate_layered(prng, gen), mesh, dvfs::VfTable::typical6(),
      reliability::FaultParams{a.num("lambda", 2e-5), 3.0}, a.num("r-th", 0.995), 1.0);
  p->set_horizon(p->horizon_for_alpha(a.num("alpha", 1.5)));
  return p;
}

/// Exercise every instrumented subsystem on one instance — heuristic,
/// annealing, MILP (warm-started), event simulation and fault injection —
/// so the telemetry epilogue (`profile` implies --stats) shows a complete
/// per-subsystem breakdown; add --trace FILE for the Perfetto timeline.
int cmd_profile(const Args& a) {
  const auto p = profile_instance(a);
  std::printf("profile: M=%d tasks on %d procs, H=%.4f s\n", p->num_tasks(), p->num_procs(),
              p->horizon());

  const auto heur = heuristic::solve_heuristic(*p);
  std::printf("profile: heuristic %s in %.3f s\n", heur.feasible ? "feasible" : "infeasible",
              heur.seconds);

  heuristic::AnnealOptions aopt;
  aopt.seed = static_cast<std::uint64_t>(a.num("seed", 1));
  aopt.iterations = static_cast<int>(a.num("iters", 4000));
  const auto ann = heuristic::solve_annealing(*p, aopt);
  std::printf("profile: annealing %s (obj %.4f, %d/%d moves accepted) in %.3f s\n",
              ann.feasible ? "feasible" : "infeasible", ann.objective, ann.accepted_moves,
              aopt.iterations, ann.seconds);

  milp::MipOptions mopt;
  mopt.time_limit_s = a.num("time-limit", 20.0);
  mopt.num_threads = static_cast<int>(a.num("threads", 1));
  if (!parse_lp_engine(a, &mopt.lp_engine)) return 2;
  const auto res = model::solve_optimal(*p, {}, mopt, heur.feasible ? &heur.solution : nullptr);
  std::printf("profile: MILP %s, bound %.6f, %lld nodes, %d LP iters in %.3f s\n",
              to_string(res.mip.status), res.mip.best_bound,
              static_cast<long long>(res.mip.nodes), res.mip.lp_iterations, res.mip.seconds);

  const deploy::DeploymentSolution* best = nullptr;
  if (res.mip.has_solution()) {
    best = &res.solution;
  } else if (heur.feasible) {
    best = &heur.solution;
  } else if (ann.feasible) {
    best = &ann.solution;
  }
  if (best != nullptr) {
    const auto sr = sim::simulate(*p, *best);
    std::printf("profile: simulation %s, makespan %.4f s (H %.4f s)\n",
                sr.ok() ? "clean" : "ANOMALIES", sr.makespan, p->horizon());
    const auto fc =
        sim::run_fault_injection(*p, *best, static_cast<int>(a.num("trials", 20000)), 2024);
    std::printf("profile: fault injection observed %.6f vs predicted %.6f\n", fc.observed,
                fc.predicted);
  } else {
    std::printf("profile: no feasible deployment found; skipping simulation\n");
  }
  return 0;
}

int cmd_simulate(const Args& a) {
  if (a.get("problem").empty() || a.get("solution").empty()) return usage();
  auto p = deploy::problem_from_json(json::parse(deploy::read_file(a.get("problem"))));
  const auto s =
      deploy::solution_from_json(json::parse(deploy::read_file(a.get("solution"))), *p);
  const auto sim = sim::simulate(*p, s);
  std::printf("event simulation: %s, makespan %.4f s (H %.4f s)\n",
              sim.ok() ? "clean" : "ANOMALIES", sim.makespan, p->horizon());
  for (const auto& an : sim.anomalies) std::printf("  anomaly: %s\n", an.c_str());
  const int trials = static_cast<int>(a.num("trials", 100000));
  const auto fc = sim::run_fault_injection(*p, s, trials, 2024);
  std::printf("fault injection (%d trials): observed %.6f vs predicted %.6f (3sigma %.6f)\n",
              fc.trials, fc.observed, fc.predicted, fc.conf3sigma);
  return sim.ok() ? 0 : 1;
}

int run_command(const Args& a) {
  if (a.command == "gen") return cmd_gen(a);
  if (a.command == "solve") return cmd_solve(a);
  if (a.command == "validate") return cmd_validate(a);
  if (a.command == "simulate") return cmd_simulate(a);
  if (a.command == "lint") return cmd_lint(a);
  if (a.command == "certify") return cmd_certify(a);
  if (a.command == "verify") return cmd_verify(a);
  if (a.command == "crosscheck") return cmd_crosscheck(a);
  if (a.command == "sweep") return cmd_sweep(a);
  if (a.command == "bench") return cmd_bench(a);
  if (a.command == "profile") return cmd_profile(a);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) {
      key = key.substr(2);
    } else if (key.rfind('-', 0) == 0) {
      key = key.substr(1);
    } else if (a.command == "bench") {
      // `bench` takes positional operands (subcommand + two files); every
      // other command is flag-only, where a bare word is a usage error.
      a.positionals.push_back(key);
      continue;
    } else {
      return usage();
    }
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      a.flags[key] = argv[++i];
    } else {
      a.flags[key] = "";  // boolean flag
    }
  }

  // Telemetry session: --stats prints the per-subsystem table, --trace FILE
  // writes Chrome trace_event JSON; `profile` implies --stats. The session
  // wraps the whole command so every instrumented subsystem lands in one
  // profile (docs/observability.md).
  const std::string trace_path = a.get("trace");
  const bool want_trace = !trace_path.empty();
  const bool want_stats = a.flags.count("stats") != 0 || a.command == "profile";
  const bool telemetry_on = want_stats || want_trace;
  // --log-json FILE: route flight-recorder dumps (error-level events,
  // invariant failures) to a JSONL file instead of stderr. Set before the
  // command runs so early failures are captured too.
  if (!a.get("log-json").empty()) obs::set_log_sink(a.get("log-json"));
  if (telemetry_on) obs::start(want_trace);

  int rc;
  try {
    rc = run_command(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    // Error-level event flushes the flight recorder: whatever the subsystems
    // logged before the throw lands in the --log-json sink (or stderr).
    ND_OBS_LOG(obs::LogLevel::kError, "cli-exception", {"command", a.command},
               {"what", std::string(e.what())});
    return 2;
  }

  if (telemetry_on) {
    const obs::Profile prof = obs::stop();
    if (!obs::compiled_in()) {
      std::printf("telemetry: compiled out (rebuild with -DNOCDEPLOY_OBS=ON)\n");
    } else if (want_stats) {
      std::printf("telemetry:\n%s", obs::to_table(prof).c_str());
    }
    if (want_trace) {
      // With the layer compiled out this still writes a valid (empty) trace
      // document, so downstream tooling never has to special-case the build.
      try {
        deploy::write_file(trace_path, obs::trace_to_json(prof).dump(2) + "\n");
        std::printf("wrote %s\n", trace_path.c_str());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "error: cannot write trace file '%s': %s\n", trace_path.c_str(),
                     e.what());
        return 2;
      }
    }
  }
  return rc;
}
