#!/bin/sh
# Banned-pattern lint over src/, tests/ and tools/.
#
# Three pattern classes, each with a rationale:
#   1. rand()/std::rand — all randomness must flow through common/prng.hpp so
#      every instance, mesh and heuristic run is reproducible from a seed.
#   2. floating-point ==/!= against a float literal — almost always a
#      tolerance bug in numeric code. Legitimate exact comparisons (zero-
#      coefficient sparsity skips, 0/1 flag decodes) carry an `fp-exact`
#      comment on the same line, which whitelists them.
#   3. `using namespace std;` in headers — leaks into every includer.
#   4. std::chrono::system_clock in src/ — telemetry and audit timestamps
#      must be monotonic (obs::now_ns / steady_clock); wall-clock time goes
#      backwards under NTP and breaks span durations and node timelines.
#   5. ==/!= on a line that touches `double` inside src/analysis/exact/ —
#      the proof layer compares in exact rational arithmetic only; a double
#      equality there silently reintroduces the float tolerances the layer
#      exists to eliminate. Rat/BigInt/enum comparisons are exact and pass;
#      the audited I/O boundary carries `fp-exact` (or `rat-io`) to whitelist.
#   6. float/double state in the Rat/BigInt header — rat.hpp must hold no
#      floating-point members or locals outside the annotated conversion
#      boundary; every double there carries a `rat-io` comment or it fails.
#   7. hand-rolled tolerance literals (`1e-...`) in the presolve layers —
#      every margin there must come from the shared claim envelope
#      (analysis/exact/envelope.hpp), so the float checker and the exact
#      checker agree on what "within tolerance" means. A presolve file that
#      needs a new constant derives it (ldexp of a power of two) or extends
#      the envelope; it never inlines `1e-6`-style magic.
#   8. tolerance literals in the sparse/LU kernels (lp/sparse.*,
#      lp/basis_lu.*) — same discipline as class 7: drop tolerances,
#      pivot-admissibility floors and eta growth margins in the
#      factorization must be envelope-derived (or exact integer/ldexp
#      expressions), because the exact proof layer re-checks certificates
#      produced through these kernels and both sides must agree on what
#      counts as zero.
#
# Exit 0 when clean, 1 with one "file:line: message" per hit otherwise.
# Run from anywhere: paths resolve relative to the repo root. POSIX sh only —
# ctest and CI invoke this with `sh`.
set -u

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root" || exit 2

fail=0
report_hits() {  # report_hits <grep -n output> <message>
  [ -n "$1" ] || return 0
  printf '%s\n' "$1" | awk -F: -v msg="$2" '{print $1 ":" $2 ": " msg}'
  fail=1
}

sources() { find src tests tools -name '*.cpp' -o -name '*.hpp' | sort; }
headers() { find src tests tools -name '*.hpp' | sort; }

# --- 1. rand()/std::rand -----------------------------------------------------
hits="$(sources | xargs grep -nE '(^|[^_[:alnum:]])(std::)?rand[[:space:]]*\(' /dev/null | grep -v 'fp-exact')" || true
report_hits "$hits" "rand()/std::rand is banned; use common/prng.hpp (seeded, reproducible)"

# --- 2. float ==/!= without an fp-exact annotation ---------------------------
# Matches a comparison where either side is a floating-point literal
# (digits '.' digits). Comparisons between two variables are left to review;
# a literal on one side is the greppable, high-signal case.
float_eq='(==|!=)[[:space:]]*[-+]?[0-9]+\.[0-9]|[0-9]+\.[0-9]+f?[[:space:]]*(==|!=)'
hits="$(sources | xargs grep -nE "$float_eq" /dev/null | grep -v 'fp-exact')" || true
report_hits "$hits" "floating-point ==/!= needs a tolerance or an 'fp-exact' comment on the line"

# --- 3. using namespace std; in headers --------------------------------------
hits="$(headers | xargs grep -nE 'using[[:space:]]+namespace[[:space:]]+std[[:space:]]*;' /dev/null)" || true
report_hits "$hits" "'using namespace std;' in a header leaks into every includer"

# --- 4. system_clock in src/ -------------------------------------------------
hits="$(find src -name '*.cpp' -o -name '*.hpp' | sort \
  | xargs grep -n 'system_clock' /dev/null)" || true
report_hits "$hits" "system_clock is not monotonic; use obs::now_ns() / steady_clock"

# --- 5. double equality inside the exact proof layer -------------------------
# Any ==/!= on a line that also mentions double/float is suspect there: the
# whole point of src/analysis/exact/ is that nothing numeric is compared in
# floating point. Annotated boundary lines (fp-exact / rat-io) pass.
exact_files="$(find src/analysis/exact -name '*.cpp' -o -name '*.hpp' | sort)"
hits="$(printf '%s\n' "$exact_files" | xargs grep -nE '==|!=' /dev/null \
  | grep -E 'double|float' | grep -vE 'fp-exact|rat-io')" || true
report_hits "$hits" "float comparison in the exact proof layer; compare as Rat or annotate 'fp-exact'"

# --- 6. floating-point state in the exact rational header --------------------
# rat.hpp must stay free of float/double members and arithmetic: every
# appearance of a floating-point type there is I/O boundary code and must be
# annotated 'rat-io' (conversion in/out) so reviewers see the full surface.
hits="$(awk '{
    code = $0; sub(/\/\/.*/, "", code)   # prose in comments is fine
    if ($0 ~ /rat-io|fp-exact/) next
    if (code ~ /(^|[^_[:alnum:]])(double|float)([^_[:alnum:]]|$)/)
      print "src/analysis/exact/rat.hpp:" FNR ":" $0
  }' src/analysis/exact/rat.hpp)" || true
report_hits "$hits" "floating-point type in rat.hpp outside the annotated 'rat-io' I/O boundary"

# --- 7. tolerance literals in the presolve layers ----------------------------
# The proof-carrying presolve derives every margin from the shared envelope;
# an inline `1e-...` literal there is a tunable tolerance in disguise and
# would let the engine and the certifier drift apart.
presolve_files="$(find src/lp -name 'presolve.*' ; find src/milp -name 'presolve.*' ; \
  find src/analysis/presolve -name '*.cpp' -o -name '*.hpp')"
hits="$(printf '%s\n' "$presolve_files" | sort | xargs grep -nE '1[eE]-[0-9]' /dev/null)" || true
report_hits "$hits" "tolerance literal in a presolve layer; derive margins from analysis/exact/envelope.hpp"

# --- 8. tolerance literals in the sparse/LU factorization kernels ------------
# The revised engine's numeric floors (drop tolerance, pivot admissibility,
# eta growth) must be envelope-derived for the same reason as class 7: the
# exact layer re-proves certificates that flowed through these kernels.
lu_files="$(find src/lp -name 'sparse.*' ; find src/lp -name 'basis_lu.*')"
hits="$(printf '%s\n' "$lu_files" | sort | xargs grep -nE '1[eE]-[0-9]' /dev/null)" || true
report_hits "$hits" "tolerance literal in a sparse/LU kernel; derive margins from analysis/exact/envelope.hpp"

if [ "$fail" -eq 0 ]; then
  echo "lint_banned_patterns: clean"
fi
exit "$fail"
