// Fig. 2(b): influence of the communication/computation energy ratio
//   μ = e^comm / e^comp
// on the allocation decision, measured as M_max = max_k |{tasks on θ_k}|.
// Larger μ ⇒ dependent tasks cluster on fewer processors to avoid paying
// for NoC transfers.
//
// The clustering is an *optimizer* effect, so this bench runs the MILP at
// reduced scale (2×2 mesh, M=5, L=3; Gurobi → own B&B, see DESIGN.md) with
// heuristic warm starts. The heuristic's own M_max is reported as a
// baseline: its allocation phase uses the paper's constant communication
// placeholder, so it reacts only weakly to μ — visible in the table.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/annealing.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Fig. 2(b)", "M_max vs mu (comm/comp energy ratio)");
  std::printf(
      "reduced scale: 2x2 mesh, M=5, L=3, optimal (B&B, 10 s limit) with heuristic warm "
      "start, 5 seeds per point\n\n");

  const std::vector<double> scales{1.0, 16.0, 128.0, 512.0, 2048.0};
  const int seeds = 5;

  Table table({"comm_scale", "mu", "Mmax_opt", "Mmax_heur", "solved"});
  for (const double scale : scales) {
    double mu_sum = 0.0, mmax_opt = 0.0, mmax_heu = 0.0;
    int solved = 0;
    for (int s = 0; s < seeds; ++s) {
      bench::Scale sc = bench::reduced_scale();
      sc.num_tasks = 5;
      sc.comm_energy_scale = scale;
      sc.alpha = 2.5;  // room to co-locate (serialization needs horizon slack)
      sc.seed = 300 + static_cast<std::uint64_t>(s);
      auto p = bench::make_instance(sc);
      // At extreme μ the paper's constant comm placeholder overwhelms
      // Algorithm 2 and the heuristic over-clusters into infeasibility; fall
      // back to the placeholder-free variant for the warm start then.
      auto h = heuristic::solve_heuristic(*p);
      if (!h.feasible) {
        heuristic::HeuristicOptions no_placeholder;
        no_placeholder.phase2.comm_placeholder = false;
        h = heuristic::solve_heuristic(*p, no_placeholder);
      }
      if (!h.feasible) continue;
      // Refine with simulated annealing: at high μ the clustering payoff is
      // found by search, and the MILP then starts from (and proves around)
      // the better incumbent.
      heuristic::AnnealOptions aopt;
      aopt.seed = sc.seed;
      const auto sa = heuristic::solve_annealing(*p, aopt);
      const deploy::DeploymentSolution* warm = &h.solution;
      if (sa.feasible &&
          sa.objective < deploy::evaluate_energy(*p, h.solution).max_proc()) {
        warm = &sa.solution;
      }
      milp::MipOptions mopt;
      mopt.time_limit_s = 10.0;
      const auto opt = model::solve_optimal(*p, {}, mopt, warm);
      if (!opt.mip.has_solution()) continue;
      ++solved;
      mu_sum += p->mu_index();
      mmax_opt += opt.solution.max_tasks_per_proc(p->num_procs());
      mmax_heu += h.solution.max_tasks_per_proc(p->num_procs());
    }
    table.add_row({fmt_f(scale, 2), solved ? fmt_f(mu_sum / solved, 4) : "-",
                   solved ? fmt_f(mmax_opt / solved, 2) : "-",
                   solved ? fmt_f(mmax_heu / solved, 2) : "-",
                   fmt_i(solved) + "/" + fmt_i(seeds)});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("fig2b").c_str());
  std::printf("\npaper shape: M_max increases with mu (co-location saves NoC energy)\n");
  return 0;
}
