// Extension bench (not a paper figure): the decomposition heuristic vs a
// simulated-annealing baseline vs the exact MILP on shared instances.
// Table-I-style metaheuristics are the usual alternative in this literature;
// this quantifies where the paper's heuristic stands between SA and optimal.
#include <cstdio>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/annealing.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Baselines", "decomposition heuristic vs simulated annealing vs optimal");
  std::printf("reduced scale: 2x2 mesh, M=4, L=3, SA 30k iters, optimal B&B 20 s limit\n\n");

  Table table({"seed", "E_heur[J]", "E_sa[J]", "E_opt[J]", "t_heur[s]", "t_sa[s]", "t_opt[s]",
               "opt_status"});
  double sum_h = 0.0, sum_s = 0.0, sum_o = 0.0;
  int solved = 0;
  for (int s = 0; s < 8; ++s) {
    bench::Scale sc = bench::reduced_scale();
    sc.alpha = 2.0;
    sc.seed = 2100 + static_cast<std::uint64_t>(s);
    auto p = bench::make_instance(sc);
    const auto h = heuristic::solve_heuristic(*p);
    if (!h.feasible) continue;
    heuristic::AnnealOptions aopt;
    aopt.seed = sc.seed;
    const auto sa = heuristic::solve_annealing(*p, aopt);
    milp::MipOptions mopt;
    mopt.time_limit_s = 20.0;
    // Warm-start the MILP with the best feasible point either method found,
    // so its incumbent dominates both even when the time limit bites.
    const deploy::DeploymentSolution* warm = &h.solution;
    if (sa.feasible &&
        sa.objective < deploy::evaluate_energy(*p, h.solution).max_proc()) {
      warm = &sa.solution;
    }
    const auto opt = model::solve_optimal(*p, {}, mopt, warm);
    if (!sa.feasible || !opt.mip.has_solution()) continue;
    const double eh = deploy::evaluate_energy(*p, h.solution).max_proc();
    const double es = sa.objective;
    const double eo = deploy::evaluate_energy(*p, opt.solution).max_proc();
    ++solved;
    sum_h += eh;
    sum_s += es;
    sum_o += eo;
    table.add_row({fmt_i(static_cast<long long>(sc.seed)), fmt_f(eh, 4), fmt_f(es, 4),
                   fmt_f(eo, 4), fmt_e(h.seconds, 1), fmt_f(sa.seconds, 2),
                   fmt_f(opt.mip.seconds, 2), to_string(opt.mip.status)});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("baselines").c_str());
  if (solved > 0) {
    std::printf("\naverages: heuristic %.4f J, annealing %.4f J, optimal %.4f J\n",
                sum_h / solved, sum_s / solved, sum_o / solved);
    std::printf("expected ordering: optimal <= annealing <= heuristic (SA refines the\n"
                "heuristic seed; the MILP bounds both)\n");
  }
  return 0;
}
