// Fig. 2(h): problem feasibility ratio δ = n_f / n_a versus the horizon
// scale α, for the optimal method and the heuristic, over n_a = 30 random
// task graphs per point (as in the paper).
//
// Paper findings: δ grows with α; the optimal method's δ dominates the
// heuristic's, because the heuristic fixes variables phase by phase.
// Reduced scale (2×2 mesh, M=4, L=3). For the optimal column, a heuristic-
// feasible instance is feasible by inclusion (no MILP run needed); otherwise
// the B&B runs with a short limit and reports found/proved-infeasible/
// unknown (unknowns are counted as infeasible, which only underestimates
// the optimal curve).
//
// The n_a seeds of each point are independent, so they run across a
// ThreadPool (NOCDEPLOY_THREADS overrides the width). Every seed writes only
// its own slot of a pre-sized result vector and the counts are reduced after
// the pool drains, so the printed table is identical for any thread count.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

namespace {

enum class SeedOutcome { kBothFeasible, kMilpOnly, kInfeasible, kUnknown };

SeedOutcome run_seed(double alpha, int s) {
  bench::Scale sc = bench::reduced_scale();
  sc.alpha = alpha;
  sc.seed = 1100 + static_cast<std::uint64_t>(s);
  auto p = bench::make_instance(sc);
  const auto h = heuristic::solve_heuristic(*p);
  if (h.feasible) return SeedOutcome::kBothFeasible;  // heuristic ⊂ MILP-feasible
  milp::MipOptions mopt;
  mopt.time_limit_s = 5.0;
  const auto opt = model::solve_optimal(*p, {}, mopt);
  if (opt.mip.has_solution()) return SeedOutcome::kMilpOnly;
  if (opt.mip.status == milp::MipStatus::kUnknown) return SeedOutcome::kUnknown;
  return SeedOutcome::kInfeasible;
}

}  // namespace

int main() {
  bench::print_header("Fig. 2(h)", "feasibility ratio delta vs alpha, optimal vs heuristic");
  const int n_a = 30;
  ThreadPool pool(0);  // machine default; NOCDEPLOY_THREADS overrides
  std::printf("reduced scale: 2x2 mesh, M=4, L=3, n_a=%d task graphs per point\n\n", n_a);

  const std::vector<double> alphas{0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.5, 2.0, 2.5};
  Table table({"alpha", "delta_opt", "delta_heur", "milp_unknown"});
  for (const double alpha : alphas) {
    std::vector<SeedOutcome> outcomes(static_cast<std::size_t>(n_a));
    parallel_for(pool, n_a,
                 [&](int s) { outcomes[static_cast<std::size_t>(s)] = run_seed(alpha, s); });
    int feas_opt = 0, feas_heu = 0, unknown = 0;
    for (const SeedOutcome o : outcomes) {
      if (o == SeedOutcome::kBothFeasible) ++feas_heu;
      if (o == SeedOutcome::kBothFeasible || o == SeedOutcome::kMilpOnly) ++feas_opt;
      if (o == SeedOutcome::kUnknown) ++unknown;
    }
    table.add_row({fmt_f(alpha, 2), fmt_f(static_cast<double>(feas_opt) / n_a, 3),
                   fmt_f(static_cast<double>(feas_heu) / n_a, 3), fmt_i(unknown)});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("fig2h").c_str());
  std::printf("\npaper shape: delta grows with alpha; optimal >= heuristic\n");
  return 0;
}
