// Fig. 2(a): energy consumption and feasibility of multi-path routing (the
// full problem P1) versus single-path routing (path choice frozen to ρ=0),
// as the horizon scale α grows.
//
// The paper solves both optimally with Gurobi at N=16, M=20. With the
// from-scratch branch-and-bound this bench runs at reduced scale (2×2 mesh,
// M=4, L=3) with per-solve time limits and heuristic warm starts; see
// DESIGN.md. Expected shape (paper): low α infeasible, feasibility and
// energy improve with α, multi-path ≥ single-path on feasibility and ≤ on
// energy.
#include <cstdio>
#include <limits>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Fig. 2(a)", "multi-path vs single-path: energy and feasibility vs alpha");
  std::printf("reduced scale: 2x2 mesh, M=4, L=3, per-solve time limit 10 s, 5 seeds per alpha\n\n");

  const std::vector<double> alphas{0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
  const int seeds = 5;

  Table table({"alpha", "feas_multi", "feas_single", "E_multi[J]", "E_single[J]", "saving[%]"});
  for (const double alpha : alphas) {
    int feas_multi = 0, feas_single = 0;
    double e_multi = 0.0, e_single = 0.0;
    int both = 0;
    for (int s = 0; s < seeds; ++s) {
      bench::Scale sc = bench::reduced_scale();
      sc.alpha = alpha;
      sc.seed = 100 + static_cast<std::uint64_t>(s);
      auto p = bench::make_instance(sc);
      // Warm starts: the fixed-path heuristic variant seeds the single-path
      // model; the better of (full heuristic, single-path incumbent) seeds
      // the multi-path model. Single-path solutions are feasible for the
      // multi-path model by inclusion, which keeps the comparison exact even
      // when the time limit bites.
      heuristic::HeuristicOptions fixed;
      fixed.select_paths = false;
      const auto h_fixed = heuristic::solve_heuristic(*p, fixed);
      const auto h_multi = heuristic::solve_heuristic(*p);

      milp::MipOptions mopt;
      mopt.time_limit_s = 10.0;
      const auto single = model::solve_optimal(*p, {model::Objective::kBalanceEnergy, false},
                                               mopt, h_fixed.feasible ? &h_fixed.solution
                                                                      : nullptr);
      const deploy::DeploymentSolution* warm_multi = nullptr;
      double warm_obj = std::numeric_limits<double>::infinity();
      if (h_multi.feasible) {
        warm_multi = &h_multi.solution;
        warm_obj = deploy::evaluate_energy(*p, h_multi.solution).max_proc();
      }
      if (single.mip.has_solution() &&
          deploy::evaluate_energy(*p, single.solution).max_proc() < warm_obj) {
        warm_multi = &single.solution;
      }
      const auto multi =
          model::solve_optimal(*p, {model::Objective::kBalanceEnergy, true}, mopt, warm_multi);

      const bool fm = multi.mip.has_solution();
      const bool fs = single.mip.has_solution();
      feas_multi += fm ? 1 : 0;
      feas_single += fs ? 1 : 0;
      if (fm && fs) {
        e_multi += deploy::evaluate_energy(*p, multi.solution).max_proc();
        e_single += deploy::evaluate_energy(*p, single.solution).max_proc();
        ++both;
      }
    }
    const double em = both > 0 ? e_multi / both : 0.0;
    const double es = both > 0 ? e_single / both : 0.0;
    table.add_row({fmt_f(alpha, 2), fmt_i(feas_multi) + "/" + fmt_i(seeds),
                   fmt_i(feas_single) + "/" + fmt_i(seeds), both ? fmt_f(em, 4) : "-",
                   both ? fmt_f(es, 4) : "-",
                   both && es > 0 ? fmt_f(100.0 * (es - em) / es, 2) : "-"});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("fig2a").c_str());
  std::printf("\npaper shape: feasibility grows with alpha; multi-path dominates single-path\n");
  return 0;
}
