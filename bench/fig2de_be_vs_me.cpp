// Fig. 2(d,e): Balancing Energy (BE, the paper's P1: min max_k E_k) versus
// Minimizing Energy (ME: min Σ_k E_k). Paper findings: ME's total energy is
// lower (avg 13.62%), but BE achieves a much smaller balance index
// φ = max_k E_k / min_k E_k (over processors with E_k ≠ 0).
//
// Reduced scale (2×2, M=4, L=3) with the own B&B (see DESIGN.md),
// heuristic warm starts and per-solve time limits.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Fig. 2(d,e)", "BE vs ME: total energy and balance index phi");
  std::printf("reduced scale: 2x2 mesh, M=4, L=3, alpha=1.8, lambda0=2e-6, comm x16, optimal B&B 10 s limit, 8 seeds\n\n");

  Table table({"seed", "E_total_BE[J]", "E_total_ME[J]", "ME_saving[%]", "phi_BE", "phi_ME"});
  double sum_saving = 0.0, sum_phi_be = 0.0, sum_phi_me = 0.0;
  int solved = 0;
  for (int s = 0; s < 8; ++s) {
    bench::Scale sc = bench::reduced_scale();
    // alpha = 1.8 keeps the heuristic warm start feasible (Algorithm 1 runs
    // everything at the slowest level); lambda small (no duplicates) and a
    // 16x communication scale so the BE/ME tension is about where comm is
    // paid, matching the regime of the paper's Fig. 2(d,e).
    sc.alpha = 1.8;
    sc.lambda0 = 2e-6;
    sc.comm_energy_scale = 16.0;
    sc.seed = 700 + static_cast<std::uint64_t>(s);
    auto p = bench::make_instance(sc);
    auto h = heuristic::solve_heuristic(*p);
    if (!h.feasible) {
      heuristic::HeuristicOptions no_placeholder;
      no_placeholder.phase2.comm_placeholder = false;
      h = heuristic::solve_heuristic(*p, no_placeholder);
    }
    if (!h.feasible) continue;
    milp::MipOptions mopt;
    mopt.time_limit_s = 10.0;
    const auto be =
        model::solve_optimal(*p, {model::Objective::kBalanceEnergy, true}, mopt, &h.solution);
    // ME gets the BE incumbent as an extra warm candidate: any BE-feasible
    // deployment is ME-feasible, and a good one speeds the min-sum search.
    const deploy::DeploymentSolution* warm_me = &h.solution;
    if (be.mip.has_solution() &&
        deploy::evaluate_energy(*p, be.solution).total() <
            deploy::evaluate_energy(*p, h.solution).total()) {
      warm_me = &be.solution;
    }
    const auto me =
        model::solve_optimal(*p, {model::Objective::kMinimizeEnergy, true}, mopt, warm_me);
    if (!be.mip.has_solution() || !me.mip.has_solution()) continue;
    const auto rep_be = deploy::evaluate_energy(*p, be.solution);
    const auto rep_me = deploy::evaluate_energy(*p, me.solution);
    const double saving = 100.0 * (rep_be.total() - rep_me.total()) / rep_be.total();
    ++solved;
    sum_saving += saving;
    sum_phi_be += rep_be.phi();
    sum_phi_me += rep_me.phi();
    table.add_row({fmt_i(static_cast<long long>(sc.seed)), fmt_f(rep_be.total(), 4),
                   fmt_f(rep_me.total(), 4), fmt_f(saving, 2), fmt_f(rep_be.phi(), 3),
                   fmt_f(rep_me.phi(), 3)});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("fig2de").c_str());
  if (solved > 0) {
    std::printf("\naverages over %d solved instances:\n", solved);
    std::printf("  ME total-energy saving vs BE : %.2f %%  (paper: 13.62 %%)\n",
                sum_saving / solved);
    std::printf("  phi BE : %.3f   phi ME : %.3f  (paper shape: phi_BE < phi_ME)\n",
                sum_phi_be / solved, sum_phi_me / solved);
  }
  return 0;
}
