// Ablation of the heuristic's design choices (DESIGN.md §4):
//   * layered allocation order (Algorithm 2 step b) vs plain index order,
//   * the constant average-communication placeholder in allocation vs none,
//   * greedy per-pair path selection (Algorithm 3) vs freezing path ρ=0.
// Reports feasibility and energy over a batch of paper-scale instances.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/phases.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Ablation", "heuristic variants: layering / comm placeholder / paths");
  const int seeds = 20;
  std::printf("paper scale: 4x4 mesh, M=20, L=6, %d seeds, alpha=2.5\n\n", seeds);

  struct Variant {
    const char* name;
    heuristic::HeuristicOptions opt;
  };
  std::vector<Variant> variants;
  {
    heuristic::HeuristicOptions full;
    variants.push_back({"full (paper)", full});
    heuristic::HeuristicOptions no_layer = full;
    no_layer.phase2.layered_sort = false;
    variants.push_back({"no layered sort", no_layer});
    heuristic::HeuristicOptions no_comm = full;
    no_comm.phase2.comm_placeholder = false;
    variants.push_back({"no comm placeholder", no_comm});
    heuristic::HeuristicOptions no_paths = full;
    no_paths.select_paths = false;
    variants.push_back({"fixed path rho=0", no_paths});
  }

  Table table({"variant", "feasible", "E_max_avg[J]", "E_total_avg[J]", "phi_avg"});
  for (const auto& v : variants) {
    int feas = 0;
    double e_max = 0.0, e_total = 0.0, phi = 0.0;
    for (int s = 0; s < seeds; ++s) {
      bench::Scale sc = bench::paper_scale();
      sc.alpha = 2.5;
      sc.seed = 1500 + static_cast<std::uint64_t>(s);
      auto p = bench::make_instance(sc);
      const auto res = heuristic::solve_heuristic(*p, v.opt);
      if (!res.feasible) continue;
      ++feas;
      const auto rep = deploy::evaluate_energy(*p, res.solution);
      e_max += rep.max_proc();
      e_total += rep.total();
      phi += rep.phi();
    }
    table.add_row({v.name, fmt_i(feas) + "/" + fmt_i(seeds),
                   feas ? fmt_f(e_max / feas, 3) : "-", feas ? fmt_f(e_total / feas, 3) : "-",
                   feas ? fmt_f(phi / feas, 3) : "-"});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("ablation").c_str());
  return 0;
}
