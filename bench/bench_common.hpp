// Shared instance builders for the figure-reproduction benches.
//
// Two scales are used (see DESIGN.md, substitutions):
//  * paper scale  — 4×4 mesh, M = 20, L = 6: heuristic experiments run here.
//  * reduced scale — 2×2 mesh, L = 3, task count M pinned per bench (table
//    below): experiments that need the exact MILP optimum run here, because
//    the from-scratch branch-and-bound replaces Gurobi. Warm starts come
//    from the heuristic.
//
// Per-bench task counts M — this table is authoritative; DESIGN.md and
// EXPERIMENTS.md reference it rather than restating values:
//
//   | bench                 | M          | scale   |
//   |-----------------------|------------|---------|
//   | fig2a_multipath       | 4          | reduced |
//   | fig2b_alloc_vs_mu     | 5          | reduced |
//   | fig2c_dup_vs_eps      | 4          | reduced |
//   | fig2de_be_vs_me       | 4          | reduced |
//   | fig2fg_opt_vs_heur    | 2–6 sweep  | reduced |
//   | fig2h_feasibility     | 4          | reduced |
//   | baseline_comparison   | 4          | reduced |
//   | ablation_heuristic    | 20         | paper   |
//   | micro_solvers         | 20 (paper-scale cases; M=4 for SA) | both |
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "deploy/problem.hpp"

namespace nd::bench {

struct Scale {
  int num_tasks = 20;
  int rows = 4, cols = 4;
  int levels = 6;
  double alpha = 0.8;
  double r_th = 0.995;
  double lambda0 = 2e-5;
  double d = 3.0;
  double comm_energy_scale = 1.0;  ///< multiplies router+link energy (μ sweeps)
  double vf_spread = 0.0;          ///< >0: use VfTable::with_spread(levels, spread)
  /// Per-link heterogeneity of the mesh (noc::MeshParams::variation). 0 makes
  /// the link tensors exactly uniform, which turns the grid's dihedral maps
  /// into provable mesh automorphisms (analysis/presolve symmetry detection).
  double mesh_variation = 0.35;
  std::uint64_t seed = 1;
};

inline Scale paper_scale() { return Scale{}; }

inline Scale reduced_scale() {
  Scale s;
  s.num_tasks = 4;
  s.rows = 2;
  s.cols = 2;
  s.levels = 3;
  return s;
}

/// Sweep corpus scale: reduced scale on a UNIFORM mesh, so the instance-level
/// symmetry reductions provably fire on every seed and BENCH_sweep.json shows
/// a non-trivial presolve footprint (rows/cols removed) to regress against.
/// One task fewer than reduced_scale: B&B enumerates far more of a uniform
/// mesh's equal-objective solutions, and at 3 tasks every sweep seed is still
/// PROVED optimal well inside the cap — which is what makes the sweep's
/// serial/pooled and presolve on/off equality checks non-vacuous.
inline Scale sweep_scale() {
  Scale s = reduced_scale();
  s.num_tasks = 3;
  s.mesh_variation = 0.0;
  return s;
}

/// Stress corpus scale for the LP-engine head-to-heads: a 3×3 mesh with six
/// tasks and four V/F levels. The MILP's LP relaxations have thousands of
/// rows and columns — where sparse FTRAN/BTRAN beats the dense tableau's
/// O(m·n) per-pivot sweep by an order of magnitude. At this size no engine
/// proves optimality inside a sweep cap (the B&B tree is out of reach), so
/// the preset is a FIXED-BUDGET benchmark: every seed runs to the time
/// limit and the engines differentiate on node throughput, per-node LP time
/// (`bnb.node_ns` — a time histogram `bench diff` gates on) and wall-clock
/// overshoot (a run can only stop between node LP solves, so a 15-second
/// dense tableau solve blows past the cap where a sub-second FTRAN-based
/// node does not). Heterogeneous mesh (the default variation), so symmetry
/// reductions don't collapse the instance the way sweep_scale does.
inline Scale sweep_stress() {
  Scale s;
  s.num_tasks = 6;
  s.rows = 3;
  s.cols = 3;
  s.levels = 4;
  return s;
}

inline std::unique_ptr<deploy::DeploymentProblem> make_instance(const Scale& sc) {
  Prng prng(sc.seed);
  task::GenParams gen;
  gen.num_tasks = sc.num_tasks;
  gen.width = std::max(2, sc.num_tasks / 5);
  task::TaskGraph graph = task::generate_layered(prng, gen);

  noc::MeshParams mesh;
  mesh.rows = sc.rows;
  mesh.cols = sc.cols;
  mesh.seed = sc.seed + 7777;
  mesh.variation = sc.mesh_variation;
  mesh.router_energy_per_byte *= sc.comm_energy_scale;
  mesh.link_energy_per_byte *= sc.comm_energy_scale;

  dvfs::VfTable vf = (sc.vf_spread > 0.0)
                         ? dvfs::VfTable::with_spread(sc.levels, sc.vf_spread)
                         : [&] {
                             if (sc.levels == 6) return dvfs::VfTable::typical6();
                             return dvfs::VfTable::with_spread(sc.levels, 1.0);
                           }();

  auto p = std::make_unique<deploy::DeploymentProblem>(
      std::move(graph), mesh, std::move(vf),
      reliability::FaultParams{sc.lambda0, sc.d}, sc.r_th, /*horizon=*/1.0);
  p->set_horizon(p->horizon_for_alpha(sc.alpha));
  return p;
}

inline void print_header(const std::string& fig, const std::string& what) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", fig.c_str(), what.c_str());
  std::printf("==========================================================\n");
}

}  // namespace nd::bench
