// Micro-benchmarks (google-benchmark) for the substrate hot paths: simplex
// solve and dual re-solve, MILP branch-and-bound, mesh routing, duplication
// transform, heuristic phases, the event simulator and MILP construction.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/prng.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/phases.hpp"
#include "lp/simplex.hpp"
#include "milp/branch_and_bound.hpp"
#include "model/formulation.hpp"
#include "sim/event_sim.hpp"
#include "common/json.hpp"
#include "deploy/serialize.hpp"
#include "heuristic/annealing.hpp"
#include "task/workloads.hpp"

using namespace nd;  // NOLINT

namespace {

lp::Problem random_lp(int n, int m, std::uint64_t seed) {
  Prng g(seed);
  lp::Problem p;
  for (int j = 0; j < n; ++j) p.add_var(0.0, 1.0, g.uniform(-1.0, 1.0));
  for (int r = 0; r < m; ++r) {
    std::vector<std::pair<int, double>> coef;
    for (int j = 0; j < n; ++j) coef.emplace_back(j, g.uniform(-1.0, 1.0));
    p.add_row(coef, lp::Sense::LE, g.uniform(0.5, static_cast<double>(n) / 4));
  }
  return p;
}

// Head-to-head: the second argument selects the engine (0 = tableau
// reference, 1 = revised). Counters expose the work profile per iteration —
// pivots, refactorizations, FTRAN/BTRAN solves (revised only) — so a bench
// diff shows WHERE the engines spend, not just how long.
lp::EngineKind engine_arg(const benchmark::State& state) {
  return state.range(1) == 0 ? lp::EngineKind::kTableau : lp::EngineKind::kRevised;
}

void report_lp_counters(benchmark::State& state, const lp::Simplex& eng) {
  const lp::Simplex::Counters& c = eng.counters();
  state.counters["pivots"] = static_cast<double>(c.pivots);
  state.counters["refactor"] = static_cast<double>(c.refactorizations);
  state.counters["ftran"] = static_cast<double>(c.ftrans);
  state.counters["btran"] = static_cast<double>(c.btrans);
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n / 2, 42);
  lp::Simplex::Options opt;
  opt.engine = engine_arg(state);
  lp::Simplex::Counters last;
  for (auto _ : state) {
    lp::Simplex eng(p, opt);
    benchmark::DoNotOptimize(eng.solve());
    last = eng.counters();
  }
  state.counters["pivots"] = static_cast<double>(last.pivots);
  state.counters["refactor"] = static_cast<double>(last.refactorizations);
  state.counters["ftran"] = static_cast<double>(last.ftrans);
  state.counters["btran"] = static_cast<double>(last.btrans);
  state.SetLabel(std::to_string(n) + " vars, " + lp::to_string(opt.engine));
}
BENCHMARK(BM_SimplexSolve)
    ->ArgsProduct({{20, 60, 150, 400}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_SimplexDualResolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Problem p = random_lp(n, n / 2, 43);
  lp::Simplex::Options opt;
  opt.engine = engine_arg(state);
  lp::Simplex eng(p, opt);
  if (eng.solve() != lp::SolveStatus::kOptimal) state.SkipWithError("base LP not optimal");
  Prng g(7);
  for (auto _ : state) {
    const int j = static_cast<int>(g.uniform_int(0, n - 1));
    const double fix = g.bernoulli(0.5) ? 1.0 : 0.0;
    eng.set_bound(j, fix, fix);
    benchmark::DoNotOptimize(eng.dual_resolve());
    eng.set_bound(j, 0.0, 1.0);
    benchmark::DoNotOptimize(eng.dual_resolve());
  }
  report_lp_counters(state, eng);
  state.SetLabel(std::to_string(n) + " vars, " + lp::to_string(opt.engine));
}
BENCHMARK(BM_SimplexDualResolve)
    ->ArgsProduct({{60, 150}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

void BM_BranchAndBoundKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Prng g(11);
  milp::Model m;
  std::vector<std::pair<int, double>> cap;
  for (int j = 0; j < n; ++j) {
    m.add_bin(-g.uniform(1.0, 10.0));
    cap.emplace_back(j, g.uniform(1.0, 5.0));
  }
  m.add_row(cap, lp::Sense::LE, 0.3 * 3.0 * n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(milp::solve(m));
  }
}
BENCHMARK(BM_BranchAndBoundKnapsack)->Arg(12)->Arg(18)->Unit(benchmark::kMillisecond);

void BM_MeshConstruction(benchmark::State& state) {
  noc::MeshParams mp;
  mp.rows = static_cast<int>(state.range(0));
  mp.cols = static_cast<int>(state.range(0));
  for (auto _ : state) {
    noc::Mesh mesh(mp);
    benchmark::DoNotOptimize(mesh.max_time_per_byte());
  }
  state.SetLabel(std::to_string(mp.rows) + "x" + std::to_string(mp.cols));
}
BENCHMARK(BM_MeshConstruction)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_DuplicationTransform(benchmark::State& state) {
  Prng g(5);
  task::GenParams gen;
  gen.num_tasks = static_cast<int>(state.range(0));
  const task::TaskGraph graph = task::generate_layered(g, gen);
  for (auto _ : state) {
    task::DuplicatedTaskSet dup(graph);
    benchmark::DoNotOptimize(dup.edges().size());
  }
}
BENCHMARK(BM_DuplicationTransform)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_HeuristicFull(benchmark::State& state) {
  bench::Scale sc = bench::paper_scale();
  sc.num_tasks = static_cast<int>(state.range(0));
  sc.alpha = 2.0;
  auto p = bench::make_instance(sc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic::solve_heuristic(*p));
  }
  state.SetLabel("M=" + std::to_string(sc.num_tasks) + " on 4x4");
}
BENCHMARK(BM_HeuristicFull)->Arg(10)->Arg(20)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_EventSim(benchmark::State& state) {
  bench::Scale sc = bench::paper_scale();
  sc.alpha = 2.0;
  auto p = bench::make_instance(sc);
  const auto h = heuristic::solve_heuristic(*p);
  if (!h.feasible) {
    state.SkipWithError("instance infeasible");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::simulate(*p, h.solution));
  }
}
BENCHMARK(BM_EventSim)->Unit(benchmark::kMicrosecond);

void BM_FormulationBuild(benchmark::State& state) {
  bench::Scale sc = bench::reduced_scale();
  sc.num_tasks = static_cast<int>(state.range(0));
  auto p = bench::make_instance(sc);
  for (auto _ : state) {
    model::Formulation f(*p);
    benchmark::DoNotOptimize(f.model().num_rows());
  }
}
BENCHMARK(BM_FormulationBuild)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_AnnealingIteration(benchmark::State& state) {
  bench::Scale sc = bench::reduced_scale();
  sc.alpha = 2.0;
  auto p = bench::make_instance(sc);
  heuristic::AnnealOptions opt;
  opt.iterations = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic::solve_annealing(*p, opt));
  }
  state.SetLabel("1000 SA iterations, M=4 on 2x2");
}
BENCHMARK(BM_AnnealingIteration)->Unit(benchmark::kMillisecond);

void BM_JsonRoundTrip(benchmark::State& state) {
  bench::Scale sc = bench::paper_scale();
  auto p = bench::make_instance(sc);
  const std::string doc = deploy::problem_to_json(*p).dump();
  for (auto _ : state) {
    benchmark::DoNotOptimize(json::parse(doc).dump());
  }
  state.SetLabel(std::to_string(doc.size()) + " byte problem document");
}
BENCHMARK(BM_JsonRoundTrip)->Unit(benchmark::kMicrosecond);

void BM_WorkloadDeployment(benchmark::State& state) {
  const auto all = task::all_workloads();
  const auto& w = all[static_cast<std::size_t>(state.range(0))];
  noc::MeshParams mesh;
  task::TaskGraph g = w.graph;
  deploy::DeploymentProblem p(std::move(g), mesh, dvfs::VfTable::typical6(),
                              reliability::FaultParams{2e-5, 3.0}, 0.995, 1.0);
  p.set_horizon(p.horizon_for_alpha(3.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(heuristic::solve_heuristic(p));
  }
  state.SetLabel(w.name);
}
BENCHMARK(BM_WorkloadDeployment)->DenseRange(0, 3);

}  // namespace

BENCHMARK_MAIN();
