#include "sweep_runner.hpp"

#include <cmath>
#include <cstdio>

#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"
#include "obs/obs.hpp"

namespace nd::bench {

namespace {

struct SolveOut {
  double seconds = 0.0;
  double obj = 0.0;
  std::int64_t nodes = 0;
  milp::MipStatus status = milp::MipStatus::kUnknown;
};

/// Generate + heuristic-warm-start + MILP-solve one seeded instance. Always
/// single-threaded internally, so the serial and pooled phases do the same
/// work and must reach the same result.
SolveOut solve_one(const Scale& base, std::uint64_t seed, double time_limit_s) {
  Scale sc = base;
  sc.seed = seed;
  const auto p = make_instance(sc);
  Stopwatch sw;
  const auto warm = heuristic::solve_heuristic(*p);
  milp::MipOptions mopt;
  mopt.time_limit_s = time_limit_s;
  mopt.num_threads = 1;
  const auto res =
      model::solve_optimal(*p, {}, mopt, warm.feasible ? &warm.solution : nullptr);
  SolveOut out;
  out.seconds = sw.seconds();
  out.status = res.mip.status;
  if (res.mip.has_solution()) out.obj = res.mip.obj;
  out.nodes = res.mip.nodes;
  return out;
}

json::Value stats_json(const Stats& st) {
  return json::Object{{"mean", st.mean()},
                      {"stddev", st.stddev()},
                      {"min", st.min()},
                      {"max", st.max()},
                      {"median", st.median()}};
}

}  // namespace

SweepResult run_sweep(const SweepOptions& opt) {
  SweepResult out;
  // Collect obs counters for the per-seed snapshots. start() returns false
  // when a session is already open (e.g. the CLI ran with --stats) or the
  // layer is compiled out; we only close what we opened.
  const bool own_session = obs::start(/*with_trace=*/false);
  out.threads_used = opt.threads > 0 ? opt.threads : ThreadPool::default_threads();
  const int k = opt.seeds;
  out.seeds.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    out.seeds[static_cast<std::size_t>(i)].seed =
        opt.first_seed + static_cast<std::uint64_t>(i);
  }

  // Phase 1: serial baseline, one instance after another on this thread.
  std::int64_t serial_nodes = 0;
  Stopwatch serial_sw;
  for (int i = 0; i < k; ++i) {
    SweepSeed& s = out.seeds[static_cast<std::size_t>(i)];
    const std::map<std::string, long long> before = obs::counter_totals();
    const SolveOut r = solve_one(opt.scale, s.seed, opt.time_limit_s);
    for (const auto& [name, total] : obs::counter_totals()) {
      const auto it = before.find(name);
      const long long delta = total - (it == before.end() ? 0 : it->second);
      if (delta != 0) s.counters[name] = delta;
    }
    s.serial_s = r.seconds;
    s.serial_obj = r.obj;
    s.serial_nodes = r.nodes;
    s.serial_status = r.status;
    serial_nodes += r.nodes;
    if (opt.verbose) {
      std::printf("[sweep] serial   seed %llu: %s obj %.6f in %.3f s (%lld nodes)\n",
                  static_cast<unsigned long long>(s.seed), milp::to_string(r.status),
                  r.obj, r.seconds, static_cast<long long>(r.nodes));
    }
  }
  out.serial_wall_s = serial_sw.seconds();

  // Phase 2: the same K instances fanned out across the pool.
  std::int64_t parallel_nodes = 0;
  {
    ThreadPool pool(out.threads_used);
    Stopwatch parallel_sw;
    parallel_for(pool, k, [&](int i) {
      SweepSeed& s = out.seeds[static_cast<std::size_t>(i)];
      const SolveOut r = solve_one(opt.scale, s.seed, opt.time_limit_s);
      s.parallel_s = r.seconds;
      s.parallel_obj = r.obj;
      s.parallel_nodes = r.nodes;
      s.parallel_status = r.status;
    });
    out.parallel_wall_s = parallel_sw.seconds();
  }
  for (const SweepSeed& s : out.seeds) parallel_nodes += s.parallel_nodes;

  for (SweepSeed& s : out.seeds) {
    s.match = s.serial_status == s.parallel_status &&
              std::abs(s.serial_obj - s.parallel_obj) <=
                  1e-6 * (1.0 + std::abs(s.serial_obj));
    if (!s.match) ++out.mismatches;
    if (opt.verbose) {
      std::printf("[sweep] parallel seed %llu: %s obj %.6f in %.3f s — %s\n",
                  static_cast<unsigned long long>(s.seed),
                  milp::to_string(s.parallel_status), s.parallel_obj, s.parallel_s,
                  s.match ? "match" : "MISMATCH");
    }
  }

  if (own_session) obs::stop();

  out.speedup = out.parallel_wall_s > 0.0 ? out.serial_wall_s / out.parallel_wall_s : 0.0;
  out.serial_nodes_per_s =
      out.serial_wall_s > 0.0 ? static_cast<double>(serial_nodes) / out.serial_wall_s : 0.0;
  out.parallel_nodes_per_s =
      out.parallel_wall_s > 0.0 ? static_cast<double>(parallel_nodes) / out.parallel_wall_s
                                : 0.0;
  return out;
}

json::Value SweepResult::to_json(const SweepOptions& opt) const {
  Stats serial_stats, parallel_stats;
  std::int64_t serial_node_total = 0, parallel_node_total = 0;
  json::Array per_seed;
  for (const SweepSeed& s : seeds) {
    serial_stats.add(s.serial_s);
    parallel_stats.add(s.parallel_s);
    serial_node_total += s.serial_nodes;
    parallel_node_total += s.parallel_nodes;
    json::Object counters;
    for (const auto& [name, delta] : s.counters) {
      counters.emplace_back(name, static_cast<std::int64_t>(delta));
    }
    per_seed.push_back(json::Object{
        {"seed", static_cast<std::int64_t>(s.seed)},
        {"serial_s", s.serial_s},
        {"parallel_s", s.parallel_s},
        {"serial_obj", s.serial_obj},
        {"parallel_obj", s.parallel_obj},
        {"serial_nodes", s.serial_nodes},
        {"parallel_nodes", s.parallel_nodes},
        {"serial_status", milp::to_string(s.serial_status)},
        {"parallel_status", milp::to_string(s.parallel_status)},
        {"match", s.match},
        {"counters", std::move(counters)},
    });
  }
  return json::Object{
      {"schema", "nocdeploy-sweep/2"},
      {"config",
       json::Object{{"seeds", opt.seeds},
                    {"first_seed", static_cast<std::int64_t>(opt.first_seed)},
                    {"threads", threads_used},
                    {"time_limit_s", opt.time_limit_s},
                    {"num_tasks", opt.scale.num_tasks},
                    {"rows", opt.scale.rows},
                    {"cols", opt.scale.cols},
                    {"levels", opt.scale.levels}}},
      {"serial", json::Object{{"wall_clock_s", serial_wall_s},
                              {"nodes", serial_node_total},
                              {"nodes_per_s", serial_nodes_per_s},
                              {"seconds_per_seed", stats_json(serial_stats)}}},
      {"parallel", json::Object{{"wall_clock_s", parallel_wall_s},
                                {"nodes", parallel_node_total},
                                {"nodes_per_s", parallel_nodes_per_s},
                                {"seconds_per_seed", stats_json(parallel_stats)}}},
      {"speedup", speedup},
      {"mismatches", mismatches},
      {"per_seed", std::move(per_seed)},
  };
}

}  // namespace nd::bench
