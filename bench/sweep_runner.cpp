#include "sweep_runner.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "analysis/presolve/instance_presolve.hpp"
#include "common/stats.hpp"
#include "common/stopwatch.hpp"
#include "common/thread_pool.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"
#include "obs/obs.hpp"

namespace nd::bench {

namespace {

struct SolveOut {
  double seconds = 0.0;
  double obj = 0.0;
  std::int64_t nodes = 0;
  milp::MipStatus status = milp::MipStatus::kUnknown;
  lp::PresolveStats presolve;
};

/// Generate + heuristic-warm-start + MILP-solve one seeded instance. Always
/// single-threaded internally, so the serial and pooled phases do the same
/// work and must reach the same result.
SolveOut solve_one(const Scale& base, std::uint64_t seed, double time_limit_s,
                   bool presolve, lp::EngineKind lp_engine) {
  Scale sc = base;
  sc.seed = seed;
  const auto p = make_instance(sc);
  Stopwatch sw;
  const auto warm = heuristic::solve_heuristic(*p);
  // Built by hand (instead of via model::solve_optimal) so the instance-level
  // proof-carrying reductions can seed the solver's root presolve.
  model::Formulation f(*p);
  std::vector<double> warm_point;
  milp::MipOptions mopt;
  mopt.time_limit_s = time_limit_s;
  mopt.num_threads = 1;
  mopt.presolve = presolve;
  mopt.lp_engine = lp_engine;
  if (warm.feasible) {
    warm_point = f.encode(warm.solution);
    mopt.warm_start = &warm_point;
  }
  mopt.completion = [&f](const std::vector<double>& lp_point, std::vector<double>* out) {
    return f.complete(lp_point, out);
  };
  analysis::InstancePresolveResult ipre;
  if (presolve) {
    analysis::InstancePresolveOptions iopt;
    if (warm.feasible) iopt.warm = &warm_point;
    ipre = analysis::instance_reductions(f, iopt);
    mopt.instance_reductions = &ipre.log;
  }
  const milp::MipResult res = milp::solve(f.model(), mopt);
  SolveOut out;
  out.seconds = sw.seconds();
  out.status = res.status;
  if (res.has_solution()) out.obj = res.obj;
  out.nodes = res.nodes;
  out.presolve = res.presolve_stats;
  return out;
}

json::Value stats_json(const Stats& st) {
  return json::Object{{"mean", st.mean()},
                      {"stddev", st.stddev()},
                      {"min", st.min()},
                      {"max", st.max()},
                      {"median", st.median()}};
}

/// Nonzero counter deltas between two local_counter_totals() snapshots.
/// Valid only when `before` and `after` come from the SAME thread — the
/// sweep's phases guarantee that (serial phases run on the calling thread,
/// each pooled instance runs entirely inside one parallel_for task).
std::map<std::string, long long> counter_delta(
    const std::map<std::string, long long>& before,
    const std::map<std::string, long long>& after) {
  std::map<std::string, long long> delta;
  for (const auto& [name, total] : after) {
    const auto it = before.find(name);
    const long long d = total - (it == before.end() ? 0 : it->second);
    if (d != 0) delta[name] = d;
  }
  return delta;
}

}  // namespace

SweepResult run_sweep(const SweepOptions& opt) {
  SweepResult out;
  // Collect obs counters for the per-seed snapshots. start() returns false
  // when a session is already open (e.g. the CLI ran with --stats) or the
  // layer is compiled out; we only close what we opened.
  const bool own_session = obs::start(/*with_trace=*/false);
  out.threads_used = opt.threads > 0 ? opt.threads : ThreadPool::default_threads();
  const int k = opt.seeds;
  out.seeds.resize(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    out.seeds[static_cast<std::size_t>(i)].seed =
        opt.first_seed + static_cast<std::uint64_t>(i);
  }

  // Phase 1: serial baseline, one instance after another on this thread.
  std::int64_t serial_nodes = 0;
  Stopwatch serial_sw;
  for (int i = 0; i < k; ++i) {
    SweepSeed& s = out.seeds[static_cast<std::size_t>(i)];
    const std::map<std::string, long long> before = obs::local_counter_totals();
    const SolveOut r = solve_one(opt.scale, s.seed, opt.time_limit_s, /*presolve=*/true, opt.lp_engine);
    s.counters = counter_delta(before, obs::local_counter_totals());
    s.serial_s = r.seconds;
    s.serial_obj = r.obj;
    s.serial_nodes = r.nodes;
    s.serial_status = r.status;
    s.presolve = r.presolve;
    serial_nodes += r.nodes;
    out.rows_removed_total += r.presolve.rows_removed;
    out.cols_removed_total += r.presolve.cols_removed;
    if (opt.verbose) {
      std::printf(
          "[sweep] serial   seed %llu: %s obj %.6f in %.3f s (%lld nodes, "
          "-%d rows -%d cols)\n",
          static_cast<unsigned long long>(s.seed), milp::to_string(r.status), r.obj,
          r.seconds, static_cast<long long>(r.nodes), r.presolve.rows_removed,
          r.presolve.cols_removed);
    }
  }
  out.serial_wall_s = serial_sw.seconds();

  // Phase 2: raw-model control — the same seeds with every presolve pass off.
  // Presolve must be a pure reformulation, so the proved objectives have to
  // match phase 1; the wall-clock ratio is the presolve speedup.
  Stopwatch off_sw;
  for (int i = 0; i < k; ++i) {
    SweepSeed& s = out.seeds[static_cast<std::size_t>(i)];
    const std::map<std::string, long long> before = obs::local_counter_totals();
    const SolveOut r = solve_one(opt.scale, s.seed, opt.time_limit_s, /*presolve=*/false, opt.lp_engine);
    s.presolve_off_counters = counter_delta(before, obs::local_counter_totals());
    s.presolve_off_s = r.seconds;
    s.presolve_off_obj = r.obj;
    s.presolve_off_nodes = r.nodes;
    s.presolve_off_status = r.status;
    if (opt.verbose) {
      std::printf("[sweep] raw      seed %llu: %s obj %.6f in %.3f s (%lld nodes)\n",
                  static_cast<unsigned long long>(s.seed), milp::to_string(r.status),
                  r.obj, r.seconds, static_cast<long long>(r.nodes));
    }
  }
  out.presolve_off_wall_s = off_sw.seconds();

  // Phase 3: the same K instances fanned out across the pool. Each task
  // brackets its own thread's counters (a pooled instance never migrates
  // workers) and adds its in-task wall time to the pool busy total; idle is
  // whatever the phase's threads x wall budget did not spend inside tasks.
  std::int64_t parallel_nodes = 0;
  std::atomic<std::int64_t> pool_busy_ns{0};
  {
    ThreadPool pool(out.threads_used);
    Stopwatch parallel_sw;
    parallel_for(pool, k, [&](int i) {
      const std::int64_t task_start_ns = obs::now_ns();
      SweepSeed& s = out.seeds[static_cast<std::size_t>(i)];
      const std::map<std::string, long long> before = obs::local_counter_totals();
      const SolveOut r = solve_one(opt.scale, s.seed, opt.time_limit_s, /*presolve=*/true, opt.lp_engine);
      s.parallel_counters = counter_delta(before, obs::local_counter_totals());
      s.parallel_s = r.seconds;
      s.parallel_obj = r.obj;
      s.parallel_nodes = r.nodes;
      s.parallel_status = r.status;
      pool_busy_ns.fetch_add(obs::now_ns() - task_start_ns, std::memory_order_relaxed);
    });
    out.parallel_wall_s = parallel_sw.seconds();
  }
  for (const SweepSeed& s : out.seeds) parallel_nodes += s.parallel_nodes;
  out.pool_busy_ns = pool_busy_ns.load(std::memory_order_relaxed);
  out.pool_idle_ns = std::max<std::int64_t>(
      0, static_cast<std::int64_t>(static_cast<double>(out.threads_used) *
                                   out.parallel_wall_s * 1e9) -
             out.pool_busy_ns);

  // Two solves are only COMPARABLE when both carry a proof: a run that hit
  // the time/node cap (kFeasible / kUnknown) stopped at a wall-clock-dependent
  // tree prefix, so its incumbent is not a statement about the instance. A
  // capped pair counts as a (vacuous) match — the per-seed statuses stay in
  // the JSON, so a corpus that keeps capping is still visible.
  const auto proved = [](milp::MipStatus st) {
    return st == milp::MipStatus::kOptimal || st == milp::MipStatus::kInfeasible;
  };
  const auto agree = [&](milp::MipStatus sa, double oa, milp::MipStatus sb, double ob) {
    if (!proved(sa) || !proved(sb)) return true;
    if (sa != sb) return false;
    return sa != milp::MipStatus::kOptimal ||
           std::abs(oa - ob) <= 1e-6 * (1.0 + std::abs(oa));
  };
  for (SweepSeed& s : out.seeds) {
    s.match = agree(s.serial_status, s.serial_obj, s.parallel_status, s.parallel_obj);
    if (!s.match) ++out.mismatches;
    s.presolve_match =
        agree(s.serial_status, s.serial_obj, s.presolve_off_status, s.presolve_off_obj);
    if (!s.presolve_match) ++out.presolve_mismatches;
    if (opt.verbose) {
      std::printf("[sweep] parallel seed %llu: %s obj %.6f in %.3f s — %s, presolve %s\n",
                  static_cast<unsigned long long>(s.seed),
                  milp::to_string(s.parallel_status), s.parallel_obj, s.parallel_s,
                  s.match ? "match" : "MISMATCH",
                  s.presolve_match ? "match" : "MISMATCH");
    }
  }

  // Snapshot the live merged histograms BEFORE closing the session so nested
  // runs (sweep inside --stats) export the same summaries as owned ones.
  out.hists = obs::hist_totals();
  out.peak_rss_bytes = obs::peak_rss_bytes();
  if (own_session) obs::stop();

  out.speedup = out.parallel_wall_s > 0.0 ? out.serial_wall_s / out.parallel_wall_s : 0.0;
  out.presolve_speedup =
      out.serial_wall_s > 0.0 ? out.presolve_off_wall_s / out.serial_wall_s : 0.0;
  out.serial_nodes_per_s =
      out.serial_wall_s > 0.0 ? static_cast<double>(serial_nodes) / out.serial_wall_s : 0.0;
  out.parallel_nodes_per_s =
      out.parallel_wall_s > 0.0 ? static_cast<double>(parallel_nodes) / out.parallel_wall_s
                                : 0.0;
  return out;
}

json::Value SweepResult::to_json(const SweepOptions& opt) const {
  Stats serial_stats, parallel_stats, off_stats;
  std::int64_t serial_node_total = 0, parallel_node_total = 0;
  json::Array per_seed;
  for (const SweepSeed& s : seeds) {
    serial_stats.add(s.serial_s);
    parallel_stats.add(s.parallel_s);
    off_stats.add(s.presolve_off_s);
    serial_node_total += s.serial_nodes;
    parallel_node_total += s.parallel_nodes;
    const auto counters_json = [](const std::map<std::string, long long>& m) {
      json::Object o;
      for (const auto& [name, delta] : m) o.emplace_back(name, static_cast<std::int64_t>(delta));
      return o;
    };
    per_seed.push_back(json::Object{
        {"seed", static_cast<std::int64_t>(s.seed)},
        {"serial_s", s.serial_s},
        {"parallel_s", s.parallel_s},
        {"serial_obj", s.serial_obj},
        {"parallel_obj", s.parallel_obj},
        {"serial_nodes", s.serial_nodes},
        {"parallel_nodes", s.parallel_nodes},
        {"serial_status", milp::to_string(s.serial_status)},
        {"parallel_status", milp::to_string(s.parallel_status)},
        {"match", s.match},
        {"presolve_off_s", s.presolve_off_s},
        {"presolve_off_obj", s.presolve_off_obj},
        {"presolve_off_nodes", s.presolve_off_nodes},
        {"presolve_off_status", milp::to_string(s.presolve_off_status)},
        {"presolve_match", s.presolve_match},
        {"presolve",
         json::Object{{"rows_removed", s.presolve.rows_removed},
                      {"cols_removed", s.presolve.cols_removed},
                      {"cols_pinned", s.presolve.cols_pinned},
                      {"nonzeros_removed",
                       static_cast<std::int64_t>(s.presolve.nonzeros_removed)},
                      {"bound_tightenings", s.presolve.bound_tightenings},
                      {"coef_tightenings", s.presolve.coef_tightenings},
                      {"fixings", s.presolve.fixings},
                      {"rounds", s.presolve.rounds}}},
        {"counters", counters_json(s.counters)},
        {"parallel_counters", counters_json(s.parallel_counters)},
        {"presolve_off_counters", counters_json(s.presolve_off_counters)},
    });
  }
  json::Object hists_json;
  for (const auto& [name, h] : hists) {
    hists_json.emplace_back(name, json::Object{
                                      {"count", static_cast<double>(h.count)},
                                      {"mean", h.mean()},
                                      {"p50", h.percentile(50)},
                                      {"p90", h.percentile(90)},
                                      {"p99", h.percentile(99)},
                                      {"min", h.min},
                                      {"max", h.max},
                                  });
  }
  const double pool_budget_ns =
      static_cast<double>(pool_busy_ns) + static_cast<double>(pool_idle_ns);
  return json::Object{
      {"schema", "nocdeploy-sweep/4"},
      {"config",
       json::Object{{"seeds", opt.seeds},
                    {"first_seed", static_cast<std::int64_t>(opt.first_seed)},
                    {"threads", threads_used},
                    {"time_limit_s", opt.time_limit_s},
                    {"num_tasks", opt.scale.num_tasks},
                    {"rows", opt.scale.rows},
                    {"cols", opt.scale.cols},
                    {"levels", opt.scale.levels},
                    {"lp_engine", std::string(lp::to_string(opt.lp_engine))}}},
      {"serial", json::Object{{"wall_clock_s", serial_wall_s},
                              {"nodes", serial_node_total},
                              {"nodes_per_s", serial_nodes_per_s},
                              {"seconds_per_seed", stats_json(serial_stats)}}},
      {"parallel",
       json::Object{{"wall_clock_s", parallel_wall_s},
                    {"nodes", parallel_node_total},
                    {"nodes_per_s", parallel_nodes_per_s},
                    {"seconds_per_seed", stats_json(parallel_stats)},
                    {"pool_busy_ns", static_cast<double>(pool_busy_ns)},
                    {"pool_idle_ns", static_cast<double>(pool_idle_ns)},
                    {"pool_utilization",
                     pool_budget_ns > 0.0 ? static_cast<double>(pool_busy_ns) / pool_budget_ns
                                          : 0.0}}},
      {"presolve_off", json::Object{{"wall_clock_s", presolve_off_wall_s},
                                    {"seconds_per_seed", stats_json(off_stats)}}},
      {"speedup", speedup},
      {"presolve_speedup", presolve_speedup},
      {"mismatches", mismatches},
      {"presolve_mismatches", presolve_mismatches},
      {"rows_removed_total", rows_removed_total},
      {"cols_removed_total", cols_removed_total},
      {"histograms", std::move(hists_json)},
      {"peak_rss_bytes", static_cast<double>(peak_rss_bytes)},
      {"per_seed", std::move(per_seed)},
  };
}

}  // namespace nd::bench
