// Fig. 2(f,g): computation time and solution energy of the optimal method
// (MILP, Gurobi in the paper → own branch-and-bound here, see DESIGN.md)
// versus the three-phase heuristic, as the task count M grows.
//
// Paper findings: optimal solve time explodes with M while the heuristic
// stays negligible (Fig. 2(f)); the heuristic costs on average 26.05% more
// energy (Fig. 2(g)).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/stopwatch.hpp"
#include "common/table.hpp"
#include "deploy/evaluate.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Fig. 2(f,g)", "solve time and energy: optimal vs heuristic, vs M");
  std::printf(
      "reduced scale: 2x2 mesh, L=3, 3 seeds per M; optimal B&B limited to 30 s per solve "
      "(entries at the limit report the incumbent + gap)\n\n");

  const std::vector<int> task_counts{2, 3, 4, 5, 6};
  Table table({"M", "t_opt[s]", "t_heur[s]", "E_opt[J]", "E_heur[J]", "heur_overhead[%]",
               "gap[%]", "solved"});
  double overhead_sum = 0.0;
  int overhead_n = 0;
  for (const int m : task_counts) {
    double t_opt = 0.0, t_heu = 0.0, e_opt = 0.0, e_heu = 0.0, gap = 0.0;
    int solved = 0;
    for (int s = 0; s < 3; ++s) {
      bench::Scale sc = bench::reduced_scale();
      sc.num_tasks = m;
      sc.alpha = 1.5;
      sc.seed = 900 + static_cast<std::uint64_t>(s);
      auto p = bench::make_instance(sc);
      const auto h = heuristic::solve_heuristic(*p);
      if (!h.feasible) continue;
      milp::MipOptions mopt;
      mopt.time_limit_s = 30.0;
      const auto opt = model::solve_optimal(*p, {}, mopt, &h.solution);
      if (!opt.mip.has_solution()) continue;
      ++solved;
      t_opt += opt.mip.seconds;
      t_heu += h.seconds;
      const double eo = deploy::evaluate_energy(*p, opt.solution).max_proc();
      const double eh = deploy::evaluate_energy(*p, h.solution).max_proc();
      e_opt += eo;
      e_heu += eh;
      gap += 100.0 * opt.mip.gap();
      if (eo > 0.0) {
        overhead_sum += 100.0 * (eh - eo) / eo;
        ++overhead_n;
      }
    }
    table.add_row({fmt_i(m), solved ? fmt_f(t_opt / solved, 3) : "-",
                   solved ? fmt_e(t_heu / solved, 2) : "-",
                   solved ? fmt_f(e_opt / solved, 4) : "-",
                   solved ? fmt_f(e_heu / solved, 4) : "-",
                   solved && e_opt > 0 ? fmt_f(100.0 * (e_heu - e_opt) / e_opt, 2) : "-",
                   solved ? fmt_f(gap / solved, 2) : "-", fmt_i(solved) + "/3"});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("fig2fg").c_str());
  if (overhead_n > 0) {
    std::printf("\naverage heuristic energy overhead vs optimal: %.2f %%  (paper: 26.05 %%)\n",
                overhead_sum / overhead_n);
  }
  std::printf("paper shape: optimal time explodes with M, heuristic stays negligible\n");
  return 0;
}
