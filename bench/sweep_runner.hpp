// Batched seed-sweep benchmark runner.
//
// Solves K seeded reduced-scale deployment instances three times: once back
// to back on the calling thread (the serial baseline, presolve on), once the
// same way with the proof-carrying presolve OFF (the raw-model baseline), and
// once fanned out across a common::ThreadPool via parallel_for (one instance
// per pool task, each MILP solve itself single-threaded so the phases do
// identical work). Whenever two phases both PROVE an outcome for a seed, they
// must prove the same one: serial vs pooled (an end-to-end determinism check)
// and presolve-on vs presolve-off (presolve is a pure reformulation — a
// standing presolve regression). Capped runs are not comparable and don't
// count as mismatches; their statuses are still recorded per seed.
// The wall-clock ratios are the pool speedup and the presolve speedup on this
// machine.
//
// `nocdeploy-cli sweep` wraps this and writes the result as BENCH_sweep.json
// (schema "nocdeploy-sweep/4"; see EXPERIMENTS.md for the field reference).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "milp/branch_and_bound.hpp"
#include "obs/obs.hpp"

namespace nd::bench {

struct SweepOptions {
  int seeds = 10;                 ///< number of instances (K)
  std::uint64_t first_seed = 1;   ///< instance seeds are first_seed .. first_seed+K-1
  int threads = 0;                ///< pool width; 0 = ThreadPool::default_threads()
  double time_limit_s = 30.0;     ///< wall-clock cap per MILP solve
  Scale scale = sweep_scale();    ///< instance shape (seed is overridden per run)
  /// LP engine driving every MILP relaxation in all three phases (recorded in
  /// the result's config block so bench-diff can tell engines apart).
  lp::EngineKind lp_engine = lp::EngineKind::kRevised;
  bool verbose = true;            ///< per-seed progress on stdout
};

/// One instance's outcome in all phases.
struct SweepSeed {
  std::uint64_t seed = 0;
  double serial_s = 0.0, parallel_s = 0.0;       ///< per-solve wall clock
  double serial_obj = 0.0, parallel_obj = 0.0;   ///< proved objective (0 if none)
  std::int64_t serial_nodes = 0, parallel_nodes = 0;
  milp::MipStatus serial_status = milp::MipStatus::kUnknown;
  milp::MipStatus parallel_status = milp::MipStatus::kUnknown;
  /// Serial and pooled phases agree: when both carry a proof (optimal /
  /// infeasible), same status and (within 1e-6 relative) same objective.
  /// A pair where either run hit the cap is vacuously true — a capped tree
  /// prefix is wall-clock-dependent, so its incumbent proves nothing.
  bool match = false;
  /// Raw-model control solve (presolve off), serial phase only.
  double presolve_off_s = 0.0;
  double presolve_off_obj = 0.0;
  std::int64_t presolve_off_nodes = 0;
  milp::MipStatus presolve_off_status = milp::MipStatus::kUnknown;
  bool presolve_match = false;  ///< on/off objectives agree (same gating as `match`)
  /// Root presolve tallies of the (presolve-on) serial solve.
  lp::PresolveStats presolve;
  /// Obs counter deltas bracketing this seed's solve in each phase, all
  /// attributable: the serial and presolve-off phases run one instance at a
  /// time on the calling thread, and each pooled instance runs entirely on
  /// one worker thread, so obs::local_counter_totals() brackets it even while
  /// other workers emit. All empty when NOCDEPLOY_OBS is compiled out.
  std::map<std::string, long long> counters;               ///< serial, presolve on
  std::map<std::string, long long> parallel_counters;      ///< pooled phase
  std::map<std::string, long long> presolve_off_counters;  ///< raw-model phase
};

struct SweepResult {
  int threads_used = 1;
  double serial_wall_s = 0.0;    ///< wall clock of the whole serial phase
  double parallel_wall_s = 0.0;  ///< wall clock of the whole pooled phase
  double speedup = 0.0;          ///< serial_wall_s / parallel_wall_s
  double serial_nodes_per_s = 0.0, parallel_nodes_per_s = 0.0;
  int mismatches = 0;  ///< seeds whose serial/pooled phases disagreed (must be 0)
  /// Presolve regression leg: wall clock of the raw-model serial phase, the
  /// presolve speedup (off/on), seeds whose on/off objectives disagreed
  /// (must be 0), and the summed reduction footprint across all seeds.
  double presolve_off_wall_s = 0.0;
  double presolve_speedup = 0.0;  ///< presolve_off_wall_s / serial_wall_s
  int presolve_mismatches = 0;
  int rows_removed_total = 0;
  int cols_removed_total = 0;
  /// Pooled-phase worker accounting (plain monotonic-clock sums, so they are
  /// populated with or without the obs layer): busy_ns is the summed in-task
  /// wall time across workers, idle_ns is threads x phase wall minus that —
  /// together they say WHY a speedup number is what it is (tail-seed idling
  /// vs genuine contention).
  std::int64_t pool_busy_ns = 0;
  std::int64_t pool_idle_ns = 0;
  /// Merged histogram snapshot of the sweep's obs session (empty when the
  /// layer is compiled out). Nested sessions (sweep under --stats) include
  /// whatever the outer session had already recorded.
  std::map<std::string, obs::HistStat> hists;
  std::int64_t peak_rss_bytes = 0;  ///< process high-water at sweep end
  std::vector<SweepSeed> seeds;

  /// The BENCH_sweep.json document (schema "nocdeploy-sweep/4").
  [[nodiscard]] json::Value to_json(const SweepOptions& opt) const;
};

SweepResult run_sweep(const SweepOptions& opt = {});

}  // namespace nd::bench
