// Batched seed-sweep benchmark runner.
//
// Solves K seeded reduced-scale deployment instances twice: once back to back
// on the calling thread (the serial baseline) and once fanned out across a
// common::ThreadPool via parallel_for (one instance per pool task, each MILP
// solve itself single-threaded so the two phases do identical work). The two
// phases must prove the same objective for every seed — the sweep doubles as
// an end-to-end determinism check — and the wall-clock ratio is the speedup
// the pool delivers on this machine.
//
// `nocdeploy-cli sweep` wraps this and writes the result as BENCH_sweep.json
// (schema "nocdeploy-sweep/2"; see EXPERIMENTS.md for the field reference).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/json.hpp"
#include "milp/branch_and_bound.hpp"

namespace nd::bench {

struct SweepOptions {
  int seeds = 10;                 ///< number of instances (K)
  std::uint64_t first_seed = 1;   ///< instance seeds are first_seed .. first_seed+K-1
  int threads = 0;                ///< pool width; 0 = ThreadPool::default_threads()
  double time_limit_s = 30.0;     ///< wall-clock cap per MILP solve
  Scale scale = reduced_scale();  ///< instance shape (seed is overridden per run)
  bool verbose = true;            ///< per-seed progress on stdout
};

/// One instance's outcome in both phases.
struct SweepSeed {
  std::uint64_t seed = 0;
  double serial_s = 0.0, parallel_s = 0.0;       ///< per-solve wall clock
  double serial_obj = 0.0, parallel_obj = 0.0;   ///< proved objective (0 if none)
  std::int64_t serial_nodes = 0, parallel_nodes = 0;
  milp::MipStatus serial_status = milp::MipStatus::kUnknown;
  milp::MipStatus parallel_status = milp::MipStatus::kUnknown;
  bool match = false;  ///< same status and (within 1e-6 relative) same objective
  /// Obs counter deltas bracketing this seed's SERIAL solve (the serial phase
  /// runs one instance at a time, so the delta is attributable; the pooled
  /// phase interleaves seeds and gets no per-seed snapshot). Empty when
  /// NOCDEPLOY_OBS is compiled out.
  std::map<std::string, long long> counters;
};

struct SweepResult {
  int threads_used = 1;
  double serial_wall_s = 0.0;    ///< wall clock of the whole serial phase
  double parallel_wall_s = 0.0;  ///< wall clock of the whole pooled phase
  double speedup = 0.0;          ///< serial_wall_s / parallel_wall_s
  double serial_nodes_per_s = 0.0, parallel_nodes_per_s = 0.0;
  int mismatches = 0;  ///< seeds whose two phases disagreed (must be 0)
  std::vector<SweepSeed> seeds;

  /// The BENCH_sweep.json document (schema "nocdeploy-sweep/2").
  [[nodiscard]] json::Value to_json(const SweepOptions& opt) const;
};

SweepResult run_sweep(const SweepOptions& opt = {});

}  // namespace nd::bench
