#include "bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <locale>
#include <map>
#include <sstream>
#include <stdexcept>

#include "common/table.hpp"

namespace nd::bench {

namespace {

/// Severity rank for report ordering (regressions first, notes last).
int rank(DiffClass c) {
  switch (c) {
    case DiffClass::kIncomparable: return 0;
    case DiffClass::kRegression: return 1;
    case DiffClass::kImprovement: return 2;
    case DiffClass::kWithinNoise: return 3;
    case DiffClass::kNote: return 4;
  }
  return 5;
}

/// Counter names whose totals are machine- or wall-clock-dependent and must
/// not be compared exactly: anything carrying nanoseconds, memory high-water
/// counters, and the parallel scheduler's work-stealing tallies.
bool nondeterministic_counter(const std::string& name) {
  return name.find("_ns") != std::string::npos || name.rfind("mem.", 0) == 0 ||
         name.rfind("bnb.par.", 0) == 0;
}

/// Histogram whose unit is nanoseconds (timing distribution — noise-banded)
/// as opposed to a count distribution (deterministic).
bool time_histogram(const std::string& name) {
  return name.find(".ns") != std::string::npos || name.find("_ns") != std::string::npos;
}

const json::Value* walk(const json::Value& doc, const std::vector<std::string>& path) {
  const json::Value* v = &doc;
  for (const std::string& key : path) {
    if (!v->is_object()) return nullptr;
    v = v->find(key);
    if (v == nullptr) return nullptr;
  }
  return v;
}

double num_or(const json::Value* v, double fallback) {
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

struct Differ {
  const DiffOptions& opt;
  DiffResult out;
  /// Cross-engine comparison (config.lp_engine differs): deterministic work
  /// counters legitimately differ between LP engines, so exact comparisons
  /// report as notes instead of gating regressions.
  bool lenient_exact = false;

  void add(DiffClass cls, std::string code, std::string metric, std::string detail) {
    switch (cls) {
      case DiffClass::kRegression: ++out.regressions; break;
      case DiffClass::kImprovement: ++out.improvements; break;
      case DiffClass::kWithinNoise: ++out.within_noise; break;
      case DiffClass::kIncomparable: out.comparable = false; break;
      case DiffClass::kNote: ++out.notes; break;
    }
    out.findings.push_back(
        {cls, std::move(code), std::move(metric), std::move(detail)});
  }

  static std::string fmt_pair(double a, double b, double band) {
    std::ostringstream os;
    os.imbue(std::locale::classic());
    os << a << " -> " << b << " (band " << band << ")";
    return os.str();
  }

  /// Noise-banded comparison for a timing metric (lower is better). The band
  /// scales with the OLD document's own spread so noisy machines gate wider.
  void compare_time(const std::string& metric, double old_v, double new_v,
                    double noise_std) {
    const double band = std::max({opt.sigma * noise_std,
                                  opt.rel_floor * std::abs(old_v), opt.abs_floor_s});
    if (new_v > old_v + band) {
      add(DiffClass::kRegression, "bench-diff-time-regression", metric,
          fmt_pair(old_v, new_v, band));
    } else if (new_v < old_v - band) {
      add(DiffClass::kImprovement, "bench-diff-time-improvement", metric,
          fmt_pair(old_v, new_v, band));
    } else {
      add(DiffClass::kWithinNoise, "bench-diff-within-noise", metric,
          fmt_pair(old_v, new_v, band));
    }
  }

  /// Dimensionless ratio where HIGHER is better (speedups): relative band
  /// only — a ratio has no per-seed stddev of its own.
  void compare_ratio(const std::string& metric, double old_v, double new_v) {
    const double band = opt.rel_floor * std::max(std::abs(old_v), 1.0);
    if (new_v < old_v - band) {
      add(DiffClass::kRegression, "bench-diff-time-regression", metric,
          fmt_pair(old_v, new_v, band));
    } else if (new_v > old_v + band) {
      add(DiffClass::kImprovement, "bench-diff-time-improvement", metric,
          fmt_pair(old_v, new_v, band));
    } else {
      add(DiffClass::kWithinNoise, "bench-diff-within-noise", metric,
          fmt_pair(old_v, new_v, band));
    }
  }

  /// Deterministic counters: identical or it's a behavioural change — unless
  /// the documents deliberately compare different LP engines, where a drift
  /// is expected and demoted to a note.
  void compare_exact(const std::string& metric, double old_v, double new_v) {
    if (old_v == new_v) {  // fp-exact: integer totals round-tripped via JSON
      ++out.within_noise;  // tallied, but no per-counter finding row
      return;
    }
    if (lenient_exact) {
      add(DiffClass::kNote, "bench-diff-counter-drift", metric,
          fmt_pair(old_v, new_v, 0.0));
      return;
    }
    add(DiffClass::kRegression, "bench-diff-counter-drift", metric,
        fmt_pair(old_v, new_v, 0.0));
  }

  void missing(const std::string& metric) {
    add(DiffClass::kNote, "bench-diff-missing-metric", metric,
        "present in old document, absent in new");
  }
};

/// Sum one per-seed counter field ("counters", "parallel_counters",
/// "presolve_off_counters") across the document's seeds.
std::map<std::string, double> seed_counter_totals(const json::Value& doc,
                                                  const std::string& field) {
  std::map<std::string, double> totals;
  const json::Value* per_seed = doc.find("per_seed");
  if (per_seed == nullptr || !per_seed->is_array()) return totals;
  for (const json::Value& seed : per_seed->as_array()) {
    if (!seed.is_object()) continue;
    const json::Value* counters = seed.find(field);
    if (counters == nullptr || !counters->is_object()) continue;
    for (const auto& [name, v] : counters->as_object()) {
      if (v.is_number()) totals[name] += v.as_number();
    }
  }
  return totals;
}

}  // namespace

const char* to_string(DiffClass c) {
  switch (c) {
    case DiffClass::kImprovement: return "improvement";
    case DiffClass::kWithinNoise: return "within-noise";
    case DiffClass::kRegression: return "REGRESSION";
    case DiffClass::kIncomparable: return "incomparable";
    case DiffClass::kNote: return "note";
  }
  return "unknown";
}

int DiffResult::exit_code() const {
  if (!comparable) return 3;
  return regressions > 0 ? 1 : 0;
}

std::string DiffResult::to_table() const {
  Table t({"class", "code", "metric", "detail"});
  for (const DiffFinding& f : findings) {
    t.add_row({to_string(f.cls), f.code, f.metric, f.detail});
  }
  std::string out = t.to_ascii();
  out += "\nbench diff: " + fmt_i(regressions) + " regression(s), " +
         fmt_i(improvements) + " improvement(s), " + fmt_i(within_noise) +
         " within noise, " + fmt_i(notes) + " note(s)" +
         (comparable ? "" : " — DOCUMENTS NOT COMPARABLE") + "\n";
  return out;
}

json::Value DiffResult::to_json() const {
  json::Array rows;
  for (const DiffFinding& f : findings) {
    rows.push_back(json::Object{{"class", to_string(f.cls)},
                                {"code", f.code},
                                {"metric", f.metric},
                                {"detail", f.detail}});
  }
  return json::Object{
      {"schema", "nocdeploy-bench-diff/1"},
      {"comparable", comparable},
      {"regressions", regressions},
      {"improvements", improvements},
      {"within_noise", within_noise},
      {"notes", notes},
      {"exit_code", exit_code()},
      {"findings", std::move(rows)},
  };
}

DiffResult diff_sweeps(const json::Value& old_doc, const json::Value& new_doc,
                       const DiffOptions& opt) {
  if (!old_doc.is_object() || !new_doc.is_object()) {
    throw std::invalid_argument("bench diff: both inputs must be JSON objects");
  }
  Differ d{opt, {}};

  // -- Comparability gates: schema string, then solve configuration ---------
  const json::Value* old_schema = old_doc.find("schema");
  const json::Value* new_schema = new_doc.find("schema");
  const std::string old_s =
      (old_schema != nullptr && old_schema->is_string()) ? old_schema->as_string() : "";
  const std::string new_s =
      (new_schema != nullptr && new_schema->is_string()) ? new_schema->as_string() : "";
  if (old_s != new_s || old_s.rfind("nocdeploy-sweep/", 0) != 0) {
    d.add(DiffClass::kIncomparable, "bench-diff-schema-mismatch", "schema",
          "'" + old_s + "' vs '" + new_s + "'");
    return d.out;
  }

  // Identical workload or the numbers mean different things entirely.
  for (const char* key : {"seeds", "first_seed", "threads", "time_limit_s",
                          "num_tasks", "rows", "cols", "levels"}) {
    const json::Value* ov = walk(old_doc, {"config", key});
    const json::Value* nv = walk(new_doc, {"config", key});
    const double o = num_or(ov, -1.0);
    const double n = num_or(nv, -2.0);
    if (o != n) {  // fp-exact: config integers must round-trip identically
      d.add(DiffClass::kIncomparable, "bench-diff-config-mismatch",
            std::string("config.") + key, Differ::fmt_pair(o, n, 0.0));
    }
  }
  if (!d.out.comparable) return d.out;

  // LP engine: a differing engine is a DELIBERATE head-to-head comparison,
  // not a broken one. Timing comparisons stand (that is the point of the
  // head-to-head), but deterministic work counters — pivot tallies,
  // factorization counts, iteration histograms — measure a different
  // algorithm, so their exact comparisons demote to notes. A document
  // without the field predates the engine knob and ran the tableau engine.
  const json::Value* oe = walk(old_doc, {"config", "lp_engine"});
  const json::Value* ne = walk(new_doc, {"config", "lp_engine"});
  const std::string old_engine =
      (oe != nullptr && oe->is_string()) ? oe->as_string() : "tableau";
  const std::string new_engine =
      (ne != nullptr && ne->is_string()) ? ne->as_string() : "tableau";
  if (old_engine != new_engine) {
    d.lenient_exact = true;
    d.add(DiffClass::kNote, "bench-diff-engine-mismatch", "config.lp_engine",
          "'" + old_engine + "' vs '" + new_engine +
              "' — deterministic counter comparisons demoted to notes");
  }

  const double num_seeds = num_or(walk(old_doc, {"config", "seeds"}), 1.0);
  const double sqrt_k = std::sqrt(std::max(1.0, num_seeds));

  // -- Timing metrics (noise-banded, lower is better) -----------------------
  for (const char* phase : {"serial", "parallel", "presolve_off"}) {
    const std::string p(phase);
    const double old_std =
        num_or(walk(old_doc, {p, "seconds_per_seed", "stddev"}), 0.0);
    const json::Value* ov = walk(old_doc, {p, "seconds_per_seed", "mean"});
    const json::Value* nv = walk(new_doc, {p, "seconds_per_seed", "mean"});
    if (ov != nullptr && nv == nullptr) {
      d.missing(p + ".seconds_per_seed.mean");
    } else if (ov != nullptr && nv != nullptr) {
      d.compare_time(p + ".seconds_per_seed.mean", ov->as_number(), nv->as_number(),
                     old_std);
    }
    const json::Value* ow = walk(old_doc, {p, "wall_clock_s"});
    const json::Value* nw = walk(new_doc, {p, "wall_clock_s"});
    if (ow != nullptr && nw == nullptr) {
      d.missing(p + ".wall_clock_s");
    } else if (ow != nullptr && nw != nullptr) {
      // A K-seed phase wall clock spreads ~ stddev x sqrt(K); widen the
      // absolute floor the same way.
      const double band_std = old_std * sqrt_k;
      d.compare_time(p + ".wall_clock_s", ow->as_number(), nw->as_number(), band_std);
    }
  }
  for (const char* ratio : {"speedup", "presolve_speedup"}) {
    const json::Value* ov = old_doc.find(ratio);
    const json::Value* nv = new_doc.find(ratio);
    if (ov != nullptr && ov->is_number() && nv != nullptr && nv->is_number()) {
      d.compare_ratio(ratio, ov->as_number(), nv->as_number());
    } else if (ov != nullptr && nv == nullptr) {
      d.missing(ratio);
    }
  }

  // -- Deterministic aggregates (exact) -------------------------------------
  for (const auto& [metric, path] :
       std::vector<std::pair<std::string, std::vector<std::string>>>{
           {"mismatches", {"mismatches"}},
           {"presolve_mismatches", {"presolve_mismatches"}},
           {"rows_removed_total", {"rows_removed_total"}},
           {"cols_removed_total", {"cols_removed_total"}},
           {"serial.nodes", {"serial", "nodes"}},
           {"parallel.nodes", {"parallel", "nodes"}},
       }) {
    const json::Value* ov = walk(old_doc, path);
    const json::Value* nv = walk(new_doc, path);
    if (ov != nullptr && ov->is_number() && nv != nullptr && nv->is_number()) {
      d.compare_exact(metric, ov->as_number(), nv->as_number());
    } else if (ov != nullptr && nv == nullptr) {
      d.missing(metric);
    }
  }

  // -- Per-seed counter totals (exact, nondeterministic names excluded) -----
  for (const char* field : {"counters", "parallel_counters", "presolve_off_counters"}) {
    const std::map<std::string, double> old_totals = seed_counter_totals(old_doc, field);
    const std::map<std::string, double> new_totals = seed_counter_totals(new_doc, field);
    if (old_totals.empty()) continue;  // obs-off baseline: nothing to compare
    if (new_totals.empty()) {
      d.missing(std::string(field));
      continue;
    }
    for (const auto& [name, old_total] : old_totals) {
      if (nondeterministic_counter(name)) continue;
      const auto it = new_totals.find(name);
      if (it == new_totals.end()) {
        d.missing(std::string(field) + "." + name);
        continue;
      }
      d.compare_exact(std::string(field) + "." + name, old_total, it->second);
    }
  }

  // -- Histogram percentile shifts ------------------------------------------
  const json::Value* old_hists = old_doc.find("histograms");
  const json::Value* new_hists = new_doc.find("histograms");
  if (old_hists != nullptr && old_hists->is_object()) {
    for (const auto& [name, oh] : old_hists->as_object()) {
      if (!oh.is_object()) continue;
      const json::Value* nh = (new_hists != nullptr && new_hists->is_object())
                                  ? new_hists->find(name)
                                  : nullptr;
      if (nh == nullptr || !nh->is_object()) {
        d.missing("histograms." + name);
        continue;
      }
      if (!time_histogram(name)) {
        // Count-valued distribution (iterations, events): deterministic.
        d.compare_exact("histograms." + name + ".count",
                        num_or(oh.find("count"), 0.0), num_or(nh->find("count"), 0.0));
      }
      for (const char* pct : {"p50", "p99"}) {
        const double o = num_or(oh.find(pct), 0.0);
        const double n = num_or(nh->find(pct), 0.0);
        const std::string metric = "histograms." + name + "." + pct;
        const double band = opt.hist_rel * std::max(std::abs(o), 1.0);
        if (n > o + band) {
          // Count-valued histograms (iterations, events) are a work PROFILE,
          // not a timing: across engines the profile legitimately differs
          // (e.g. revised simplex trades more, cheaper iterations), so the
          // cross-engine comparison demotes those shifts alongside counters.
          // Time histograms keep gating — wall time is engine-agnostic.
          if (d.lenient_exact && !time_histogram(name)) {
            d.add(DiffClass::kNote, "bench-diff-hist-drift", metric,
                  Differ::fmt_pair(o, n, band));
          } else {
            d.add(DiffClass::kRegression, "bench-diff-hist-regression", metric,
                  Differ::fmt_pair(o, n, band));
          }
        } else if (n < o - band) {
          d.add(DiffClass::kImprovement, "bench-diff-time-improvement", metric,
                Differ::fmt_pair(o, n, band));
        } else {
          ++d.out.within_noise;  // tallied, no per-percentile row
        }
      }
    }
  }

  std::stable_sort(d.out.findings.begin(), d.out.findings.end(),
                   [](const DiffFinding& a, const DiffFinding& b) {
                     return rank(a.cls) < rank(b.cls);
                   });
  return d.out;
}

}  // namespace nd::bench
