// Noise-aware comparison of two sweep documents (BENCH_sweep.json).
//
// The regression observatory's core: `nocdeploy-cli bench diff old.json
// new.json` loads two nocdeploy-sweep/4 documents and classifies every
// shared metric:
//   * timing metrics (wall clocks, per-seed second stats) compare against a
//     noise threshold derived from the OLD document's own spread —
//     max(sigma x stddev, rel_floor x mean, abs_floor) — so a machine with
//     noisy seeds gets a proportionally wider band instead of a flaky gate;
//   * deterministic work counters (node counts, pivots, per-seed counter
//     deltas) compare EXACTLY — they are identical across machines for the
//     same code, so any drift is a real behavioural change, not noise;
//   * histogram summaries compare by relative percentile shift (p50/p99),
//     catching tail-latency regressions that means hide.
//
// Every finding carries a stable kebab-case diagnostic code (e.g.
// "bench-diff-time-regression") so tests and CI pin behaviour to codes, not
// message text. Exit-code contract (DiffResult::exit_code):
//   0  comparable and no regression (improvements / within-noise only)
//   1  at least one regression finding
//   3  documents not comparable (schema or config mismatch)
// (the CLI reserves 2 for usage errors.)
#pragma once

#include <string>
#include <vector>

#include "common/json.hpp"

namespace nd::bench {

struct DiffOptions {
  double sigma = 3.0;        ///< stddev multiplier in the noise threshold
  double rel_floor = 0.10;   ///< minimum relative band (10%) for time metrics
  double abs_floor_s = 0.002;  ///< minimum absolute band for time metrics
  double hist_rel = 0.50;    ///< relative percentile-shift band for histograms
};

enum class DiffClass {
  kImprovement,   ///< beyond the noise band in the good direction
  kWithinNoise,   ///< inside the band (or exactly equal)
  kRegression,    ///< beyond the band in the bad direction — gates CI
  kIncomparable,  ///< schema/config mismatch; documents cannot be compared
  kNote,          ///< non-gating observation (missing metric, new metric)
};

const char* to_string(DiffClass c);

struct DiffFinding {
  DiffClass cls = DiffClass::kNote;
  std::string code;    ///< stable diagnostic id, kebab-case, "bench-diff-*"
  std::string metric;  ///< dotted metric path, e.g. "serial.wall_clock_s"
  std::string detail;  ///< human-readable old → new with the band used
};

struct DiffResult {
  std::vector<DiffFinding> findings;
  int regressions = 0;
  int improvements = 0;
  int within_noise = 0;
  int notes = 0;
  bool comparable = true;

  /// 3 when incomparable, 1 when any regression, else 0.
  [[nodiscard]] int exit_code() const;
  /// Aligned human-readable report (one row per finding + a summary line).
  [[nodiscard]] std::string to_table() const;
  /// Machine-readable document (schema "nocdeploy-bench-diff/1").
  [[nodiscard]] json::Value to_json() const;
};

/// Compare two sweep documents. Throws std::invalid_argument only on
/// documents that are not JSON objects at all; structural problems inside
/// (wrong schema string, differing config) become kIncomparable findings.
DiffResult diff_sweeps(const json::Value& old_doc, const json::Value& new_doc,
                       const DiffOptions& opt = {});

}  // namespace nd::bench
