// Fig. 2(c): influence of the V/F-table energy gap
//   ε = max_l(P_l/f_l) / min_l(P_l/f_l)
// on the number of duplicated tasks M_d. Small ε: one copy at a high
// (reliable) frequency is energy-competitive, so the optimizer avoids
// duplication. Large ε: high frequencies cost disproportionally much, so two
// cheap low-frequency copies win — M_d grows with ε.
//
// The tradeoff is resolved by the *optimizer* (eq. (4) forces a duplicate
// exactly when the chosen level is unreliable, so the decision is the level
// choice): this bench runs the MILP at reduced scale (2×2, M=4, L=3 with a
// swept voltage spread; Gurobi → own B&B per DESIGN.md). The heuristic's
// M_d is reported as a baseline: Algorithm 1 greedily picks the cheapest
// deadline-feasible level, so its duplication count barely reacts to ε.
// Frequencies are held fixed across the sweep, so reliability (and hence the
// duplication *trigger* per level) is identical — only energy shifts.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common/table.hpp"
#include "deploy/solution.hpp"
#include "heuristic/phases.hpp"
#include "model/formulation.hpp"

using namespace nd;  // NOLINT

int main() {
  bench::print_header("Fig. 2(c)", "duplicated tasks M_d vs energy-gap index eps");
  std::printf(
      "reduced scale: 2x2 mesh, M=4, L=3 (voltage spread swept), optimal B&B 10 s limit, "
      "5 seeds per point\n\n");

  const std::vector<double> spreads{0.4, 0.8, 1.2, 1.6, 2.0};
  const int seeds = 5;

  Table table({"spread", "eps", "Md_opt", "Md_heur", "solved"});
  for (const double spread : spreads) {
    double eps = 0.0, md_opt = 0.0, md_heu = 0.0;
    int solved = 0;
    for (int s = 0; s < seeds; ++s) {
      bench::Scale sc = bench::reduced_scale();
      sc.vf_spread = spread;
      sc.lambda0 = 5e-5;  // reliability pressure so duplication is in play
      sc.alpha = 3.0;     // room for the extra copies
      sc.seed = 500 + static_cast<std::uint64_t>(s);
      auto p = bench::make_instance(sc);
      const auto h = heuristic::solve_heuristic(*p);
      if (!h.feasible) continue;
      milp::MipOptions mopt;
      mopt.time_limit_s = 10.0;
      const auto opt = model::solve_optimal(*p, {}, mopt, &h.solution);
      if (!opt.mip.has_solution()) continue;
      ++solved;
      eps += p->vf().energy_gap_eps();
      md_opt += opt.solution.num_duplicates(p->num_tasks());
      md_heu += h.solution.num_duplicates(p->num_tasks());
    }
    table.add_row({fmt_f(spread, 2), solved ? fmt_f(eps / solved, 3) : "-",
                   solved ? fmt_f(md_opt / solved, 2) : "-",
                   solved ? fmt_f(md_heu / solved, 2) : "-",
                   fmt_i(solved) + "/" + fmt_i(seeds)});
  }
  std::printf("%s\n%s", table.to_ascii().c_str(), table.to_csv("fig2c").c_str());
  std::printf("\npaper shape: M_d increases with eps\n");
  return 0;
}
